package stream

import (
	"fmt"
	"sync"

	"pmuleak/internal/telemetry"
)

// Daemon-level telemetry. Per-stream series are registered dynamically
// under stream.daemon.<name>.* when a stream attaches. The shed / retry
// / quarantine families are the degradation dashboard: a daemon under
// overload or fault pressure must show it here, never degrade silently.
var (
	daemonDispatches = telemetry.NewCounter("stream.daemon.dispatches")
	daemonActive     = telemetry.NewGauge("stream.daemon.active_streams")

	shedChunks = telemetry.NewCounter("stream.shed.chunks")
	shedAttach = telemetry.NewCounter("stream.shed.attach_rejected")

	quarPanics  = telemetry.NewCounter("stream.quarantine.panics")
	quarStalls  = telemetry.NewCounter("stream.quarantine.stalls")
	quarDropped = telemetry.NewCounter("stream.quarantine.dropped_chunks")
	quarActive  = telemetry.NewGauge("stream.quarantine.active")
)

// drainBurst bounds how many chunks one dispatch feeds a stream before
// the worker re-queues it — the fairness knob that keeps one firehose
// stream from starving the rest of the pool.
const drainBurst = 4

// Processor consumes one stream's chunks in order. CovertReceiver and
// KeylogDetector implement it; the daemon guarantees Push is never
// called concurrently for the same stream, so processors need no
// locking of their own.
type Processor interface {
	Push(chunk []complex128)
}

// ShedPolicy is the overload policy for a stream's ring.
type ShedPolicy int

const (
	// ShedBlock is pure backpressure (the default): a producer pushing
	// into a full ring blocks until a worker drains it. Lossless, and
	// the only policy under which streamed output is guaranteed
	// byte-identical to batch.
	ShedBlock ShedPolicy = iota
	// ShedNewest discards the incoming chunk when the ring is full. The
	// producer never blocks; the freshest data is sacrificed first.
	ShedNewest
	// ShedOldest evicts the oldest buffered chunk to admit the new one.
	// The producer never blocks; the stalest data is sacrificed first.
	ShedOldest
)

// Daemon multiplexes many capture streams over a fixed worker pool —
// the dispatch core of `emscope serve`. Each attached stream owns a
// bounded Ring (backpressure: a producer outrunning the pool blocks on
// its own ring, never grows it) and is processed by at most one worker
// at a time: a stream is either idle, queued on the runnable list, or
// running, and only the transition through the daemon's lock moves it
// between states. Workers pull runnable streams FIFO, feed at most
// drainBurst chunks to the stream's processor, and re-queue it while
// its ring has more — so N streams share W workers fairly with
// per-stream FIFO order preserved.
//
// Supervision (this file plus supervise.go) keeps one stream's failure
// one stream's problem:
//
//   - a processor that panics is quarantined — its ring aborted so
//     producers unblock, its Done closed, the panic recorded — while
//     the worker goroutine survives to serve every other stream;
//   - checkpointing (WithCheckpoints) persists each Checkpointer
//     processor's compact state at burst boundaries, so a killed
//     process restores from disk and resumes byte-identically;
//   - admission (WithMaxStreams) and shedding (WithShedPolicy) bound
//     what an overloaded daemon accepts, with every rejection and drop
//     counted under stream.shed.*.
//
// Shutdown is a graceful drain: CloseAll (or per-stream Close) refuses
// new input, workers finish everything still buffered, each stream's
// Done channel closes when its ring is empty (or the stream is
// quarantined), and Drain returns once every worker goroutine has
// exited — the goroutine-leak test pins that nothing survives it.
type Daemon struct {
	mu       sync.Mutex
	cond     *sync.Cond
	runnable []*DaemonStream
	streams  []*DaemonStream
	active   int // attached streams not yet done (admission accounting)
	stopping bool
	wg       sync.WaitGroup

	maxStreams int
	shed       ShedPolicy
	ckptDir    string
	ckptEvery  int
}

// DaemonOption customizes a Daemon at construction.
type DaemonOption func(*Daemon)

// WithMaxStreams sets an admission limit: AttachE refuses new streams
// while this many are attached and unfinished (counted under
// stream.shed.attach_rejected). Zero (the default) means unlimited.
func WithMaxStreams(n int) DaemonOption {
	return func(d *Daemon) { d.maxStreams = n }
}

// WithShedPolicy sets the overload policy applied to every stream's
// ring. Anything but ShedBlock trades the byte-identity guarantee for
// bounded producer latency; every dropped chunk is counted under
// stream.shed.chunks and the per-stream shed counter, so the trade is
// visible.
func WithShedPolicy(p ShedPolicy) DaemonOption {
	return func(d *Daemon) { d.shed = p }
}

// WithCheckpoints persists each Checkpointer processor's state to
// dir/<name>.ckpt after every everyChunks processed chunks (minimum 1).
// Writes happen on the worker inside the stream's exclusive dispatch
// window, so the encoded state is always a consistent chunk-boundary
// cut. Write failures are recorded (stream.checkpoint.errors, the
// stream's CheckpointErr) and processing continues — losing checkpoint
// durability must not take down a healthy stream.
func WithCheckpoints(dir string, everyChunks int) DaemonOption {
	if everyChunks < 1 {
		everyChunks = 1
	}
	return func(d *Daemon) { d.ckptDir, d.ckptEvery = dir, everyChunks }
}

// DaemonStream is one attached capture stream: its ring, its processor,
// and its scheduling state (guarded by the daemon's lock).
type DaemonStream struct {
	name string
	d    *Daemon
	ring *Ring
	proc Processor
	ck   Checkpointer // non-nil when checkpointing applies to proc

	queued      bool
	running     bool
	quarantined bool
	err         error // quarantine cause
	ckptErr     error // most recent checkpoint write failure
	done        chan struct{}
	sinceCkpt   int // chunks since the last checkpoint (worker-only)

	chunks  *telemetry.Counter
	samples *telemetry.Counter
	stalls  *telemetry.Counter
	shed    *telemetry.Counter
	retries *telemetry.Counter
	// depth mirrors the ring's buffered-chunk count at every
	// enqueue/dequeue, so backpressure is visible on the admin plane
	// before pushes start stalling; latency times each processor Push in
	// the dispatch loop; quar flips to 1 while the stream is
	// quarantined, which is what /healthz lists as degraded.
	depth   *telemetry.Gauge
	quar    *telemetry.Gauge
	latency *telemetry.Histogram
}

// NewDaemon starts a pool of the given worker count (minimum 1).
func NewDaemon(workers int, opts ...DaemonOption) *Daemon {
	if workers < 1 {
		workers = 1
	}
	d := &Daemon{}
	for _, o := range opts {
		o(d)
	}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

// Attach registers a stream: chunks pushed to the returned
// DaemonStream flow through a ring of queueCap chunks into proc on the
// worker pool. The name keys the stream's telemetry series
// (stream.daemon.<name>.*). Attach panics when an admission limit
// refuses the stream; daemons constructed with WithMaxStreams should
// use AttachE and handle the error.
func (d *Daemon) Attach(name string, proc Processor, queueCap int) *DaemonStream {
	s, err := d.AttachE(name, proc, queueCap)
	if err != nil {
		panic(err)
	}
	return s
}

// AttachE is Attach with admission control surfaced as an error: a
// daemon at its WithMaxStreams limit refuses the stream (counted under
// stream.shed.attach_rejected) instead of overcommitting the pool.
func (d *Daemon) AttachE(name string, proc Processor, queueCap int) (*DaemonStream, error) {
	d.mu.Lock()
	if d.maxStreams > 0 && d.active >= d.maxStreams {
		limit := d.maxStreams
		d.mu.Unlock()
		shedAttach.Inc()
		return nil, fmt.Errorf("stream: admission limit reached (%d active streams)", limit)
	}
	d.active++
	d.mu.Unlock()

	s := &DaemonStream{
		name:    name,
		d:       d,
		ring:    NewRing(queueCap),
		proc:    proc,
		done:    make(chan struct{}),
		chunks:  telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.chunks", name)),
		samples: telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.samples", name)),
		stalls:  telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.stalls", name)),
		shed:    telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.shed", name)),
		retries: telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.retries", name)),
		depth:   telemetry.NewGauge(fmt.Sprintf("stream.daemon.%s.queue_depth", name)),
		quar:    telemetry.NewGauge(fmt.Sprintf("stream.daemon.%s.quarantined", name)),
		latency: telemetry.NewHistogram(fmt.Sprintf("stream.daemon.%s.chunk", name)),
	}
	if d.ckptDir != "" {
		if ck, ok := proc.(Checkpointer); ok {
			s.ck = ck
		}
	}
	// A re-attached name reuses its telemetry series; the gauges must
	// restart at the new stream's state rather than a stale level.
	s.depth.Set(0)
	s.quar.Set(0)
	d.mu.Lock()
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	daemonActive.Add(1)
	return s, nil
}

// Push hands a chunk to the stream. Under ShedBlock it blocks while the
// ring is full — the backpressure contract; under a shedding policy it
// never blocks and may discard a chunk instead (counted). It reports
// false once the stream is closed or quarantined. Multiple producers
// may push to one stream; chunk order is then their arrival order at
// the ring.
func (s *DaemonStream) Push(chunk []complex128) bool {
	before := s.ring.Stalls()
	ok, shed := s.ring.Offer(chunk, s.d.shed)
	if !ok {
		return false
	}
	if shed > 0 {
		shedChunks.Add(uint64(shed))
		s.shed.Add(uint64(shed))
	}
	if waited := s.ring.Stalls() - before; waited > 0 {
		s.stalls.Add(waited)
	}
	s.depth.Set(int64(s.ring.Len()))
	s.d.enqueue(s)
	return true
}

// Close marks the stream's end of input. Buffered chunks still drain;
// Done closes once they have.
func (s *DaemonStream) Close() {
	s.ring.Close()
	d := s.d
	d.mu.Lock()
	s.maybeFinishLocked()
	d.mu.Unlock()
}

// Done returns a channel closed when the stream will never be processed
// further: either it was closed and every buffered chunk handled, or it
// was quarantined. Quarantined reports which.
func (s *DaemonStream) Done() <-chan struct{} { return s.done }

// Name returns the stream's telemetry name.
func (s *DaemonStream) Name() string { return s.name }

// Pending returns the number of chunks buffered and not yet processed.
func (s *DaemonStream) Pending() int { return s.ring.Len() }

// Stalls returns how many pushes hit a full ring (backpressure events).
func (s *DaemonStream) Stalls() uint64 { return s.ring.Stalls() }

// Quarantined reports whether the stream was isolated after a processor
// panic or a given-up source. A quarantined stream's Done is closed,
// its ring refuses pushes, and its processor must not be finalized —
// its state is mid-chunk garbage. Err returns the cause.
func (s *DaemonStream) Quarantined() bool {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return s.quarantined
}

// Err returns why the stream was quarantined (nil while healthy).
func (s *DaemonStream) Err() error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return s.err
}

// CheckpointErr returns the most recent checkpoint write failure (nil
// if checkpoints are off or all writes succeeded). A failing checkpoint
// directory degrades durability, not processing, so the error is
// surfaced here and on stream.checkpoint.errors instead of stopping the
// stream.
func (s *DaemonStream) CheckpointErr() error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return s.ckptErr
}

// enqueue moves an idle stream with pending chunks onto the runnable
// list. Called after every push; a stream already queued, running, or
// quarantined is left alone (the running worker re-checks the ring
// before parking it).
func (d *Daemon) enqueue(s *DaemonStream) {
	d.mu.Lock()
	if !s.queued && !s.running && !s.quarantined && s.ring.Len() > 0 {
		s.queued = true
		d.runnable = append(d.runnable, s)
		d.cond.Signal()
	}
	d.mu.Unlock()
}

// finishLocked closes the stream's Done channel exactly once and
// settles the admission count. Caller holds d.mu.
func (s *DaemonStream) finishLocked() {
	select {
	case <-s.done:
	default:
		close(s.done)
		daemonActive.Add(-1)
		s.d.active--
	}
}

// maybeFinishLocked closes the stream's Done channel when its input is
// finished and nothing is queued or in flight. Caller holds d.mu.
func (s *DaemonStream) maybeFinishLocked() {
	if !s.running && !s.queued && s.ring.Drained() {
		s.finishLocked()
	}
}

// quarantine isolates a failing stream without touching its siblings or
// the worker pool: the ring is aborted (producers blocked in Push wake
// and see the refusal; buffered chunks are dropped and counted), the
// cause is recorded, the per-stream quarantined gauge flips for
// /healthz, and Done closes so Drain and waiters proceed. cause tells
// the telemetry family apart: quarPanics for processor panics,
// quarStalls for sources the supervisor gave up on.
func (d *Daemon) quarantine(s *DaemonStream, cause error, counter *telemetry.Counter) {
	if dropped := s.ring.Abort(); dropped > 0 {
		quarDropped.Add(uint64(dropped))
	}
	s.depth.Set(0)
	d.mu.Lock()
	if !s.quarantined {
		s.quarantined = true
		s.err = cause
		counter.Inc()
		quarActive.Add(1)
		s.quar.Set(1)
		s.finishLocked()
	}
	s.running = false
	s.queued = false
	d.mu.Unlock()
}

// runBurst feeds the stream up to drainBurst chunks inside the worker's
// exclusive window, converting a processor panic into a returned value
// instead of a dead worker.
func (d *Daemon) runBurst(s *DaemonStream) (panicked any, didPanic bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked, didPanic = r, true
		}
	}()
	for i := 0; i < drainBurst; i++ {
		chunk, ok := s.ring.TryPop()
		if !ok {
			break
		}
		s.depth.Set(int64(s.ring.Len()))
		span := s.latency.Start()
		s.proc.Push(chunk)
		span.End()
		s.chunks.Inc()
		s.samples.Add(uint64(len(chunk)))
		s.sinceCkpt++
		daemonDispatches.Inc()
	}
	return nil, false
}

// maybeCheckpoint persists the processor's state when the cadence says
// so. Runs on the worker while the stream is marked running, so the
// processor is quiescent and the encoded state is a chunk-boundary cut.
func (s *DaemonStream) maybeCheckpoint() {
	if s.ck == nil || s.sinceCkpt < s.d.ckptEvery {
		return
	}
	s.sinceCkpt = 0
	if err := WriteCheckpoint(s.d.ckptDir, s.name, s.ck); err != nil {
		s.d.mu.Lock()
		s.ckptErr = err
		s.d.mu.Unlock()
	}
}

// worker is the dispatch loop: claim a runnable stream, feed it a
// bounded burst, hand it back. A panicking stream is quarantined right
// here and the loop continues — one poisoned stream must cost the pool
// one burst, not one worker.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.runnable) == 0 && !d.stopping {
			d.cond.Wait()
		}
		if len(d.runnable) == 0 {
			d.mu.Unlock()
			return
		}
		s := d.runnable[0]
		d.runnable = d.runnable[1:]
		s.queued = false
		s.running = true
		d.mu.Unlock()

		if p, didPanic := d.runBurst(s); didPanic {
			d.quarantine(s, fmt.Errorf("stream: processor panic: %v", p), quarPanics)
			continue
		}
		s.maybeCheckpoint()

		d.mu.Lock()
		s.running = false
		if s.ring.Len() > 0 {
			s.queued = true
			d.runnable = append(d.runnable, s)
			d.cond.Signal()
		} else {
			s.maybeFinishLocked()
		}
		d.mu.Unlock()
	}
}

// CloseAll closes every attached stream (idempotent per stream).
func (d *Daemon) CloseAll() {
	d.mu.Lock()
	streams := append([]*DaemonStream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}

// Drain gracefully shuts the daemon down: closes every stream, waits
// for all buffered chunks to be processed (quarantined streams are
// already done — their buffers were dropped at quarantine), then stops
// the worker pool and waits for every worker goroutine to exit. After
// Drain the healthy processors hold their final state and can be
// finalized.
func (d *Daemon) Drain() {
	d.CloseAll()
	d.mu.Lock()
	streams := append([]*DaemonStream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		<-s.done
	}
	d.mu.Lock()
	d.stopping = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}
