package stream_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pmuleak/internal/covert"
	"pmuleak/internal/keylog"
	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// TestRingFIFO pins the ring's ordering and close semantics: chunks
// come out in push order, Close drains the remainder, and pushes after
// Close are refused.
func TestRingFIFO(t *testing.T) {
	r := stream.NewRing(3)
	chunks := make([][]complex128, 5)
	for i := range chunks {
		chunks[i] = make([]complex128, i+1)
	}
	for _, c := range chunks[:3] {
		if !r.Push(c) {
			t.Fatal("push to open ring refused")
		}
	}
	if got, _ := r.TryPop(); len(got) != 1 {
		t.Fatalf("first pop returned chunk of %d samples, want 1", len(got))
	}
	r.Push(chunks[3])
	r.Close()
	if r.Push(chunks[4]) {
		t.Fatal("push to closed ring accepted")
	}
	for want := 2; want <= 4; want++ {
		got, ok := r.Pop()
		if !ok || len(got) != want {
			t.Fatalf("pop = (%d samples, %v), want (%d, true)", len(got), ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from drained ring reported a chunk")
	}
	if !r.Drained() {
		t.Fatal("closed empty ring not drained")
	}
}

// TestRingBackpressure: a capacity-2 ring with a slow consumer makes
// the producer block — the stall counter proves pushes waited, and
// order still holds.
func TestRingBackpressure(t *testing.T) {
	r := stream.NewRing(2)
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			r.Push([]complex128{complex(float64(i), 0)})
		}
		r.Close()
	}()
	next := 0
	for {
		chunk, ok := r.Pop()
		if !ok {
			break
		}
		if got := int(real(chunk[0])); got != next {
			t.Fatalf("chunk %d arrived out of order (got %d)", next, got)
		}
		next++
		time.Sleep(200 * time.Microsecond)
	}
	if next != n {
		t.Fatalf("consumed %d chunks, want %d", next, n)
	}
	if r.Stalls() == 0 {
		t.Fatal("slow consumer never exerted backpressure (0 stalls)")
	}
}

// slowProc is a processor that lags its producer on purpose, to force
// queue buildup in the daemon backpressure test.
type slowProc struct {
	chunks int
	delay  time.Duration
}

func (p *slowProc) Push(chunk []complex128) {
	time.Sleep(p.delay)
	p.chunks++
}

// TestDaemonBackpressure: one slow stream behind a capacity-2 queue.
// The producer must hit the full ring (stalls recorded on the stream
// and its telemetry counter), yet every chunk still arrives, in order,
// exactly once.
func TestDaemonBackpressure(t *testing.T) {
	d := stream.NewDaemon(2)
	proc := &slowProc{delay: time.Millisecond}
	s := d.Attach("bp", proc, 2)
	const n = 24
	for i := 0; i < n; i++ {
		if !s.Push(make([]complex128, 8)) {
			t.Fatal("push to open stream refused")
		}
	}
	s.Close()
	d.Drain()
	if proc.chunks != n {
		t.Fatalf("processor saw %d chunks, want %d", proc.chunks, n)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d chunks still pending after drain", s.Pending())
	}
	if s.Stalls() == 0 {
		t.Fatal("producer never stalled against the capacity-2 queue")
	}
	snap := telemetry.Capture()
	if snap.Counters["stream.daemon.bp.stalls"] == 0 {
		t.Fatal("per-stream stall telemetry not recorded")
	}
	if got := snap.Counters["stream.daemon.bp.chunks"]; got != n {
		t.Fatalf("per-stream chunk telemetry = %d, want %d", got, n)
	}
}

// gatedProc blocks every Push until the gate opens and reports each
// entry, letting a test freeze the daemon's single worker at a known
// point.
type gatedProc struct {
	entered chan struct{}
	gate    chan struct{}
	chunks  int // worker-goroutine only (one stream = one worker)
}

func (p *gatedProc) Push(chunk []complex128) {
	p.entered <- struct{}{}
	<-p.gate
	p.chunks++
}

// TestDaemonQueueDepthAndLatency pins the introspection series added
// for the admin plane: the queue_depth gauge tracks the ring's
// buffered-chunk count at enqueue/dequeue (visible backpressure before
// any stall), and the per-stream chunk histogram records one latency
// observation per dispatched chunk.
func TestDaemonQueueDepthAndLatency(t *testing.T) {
	d := stream.NewDaemon(1)
	proc := &gatedProc{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	s := d.Attach("depth", proc, 8)

	s.Push(make([]complex128, 4))
	// The worker is now parked inside proc.Push with the ring empty, so
	// the next pushes accumulate depth with no concurrent dequeues.
	<-proc.entered
	for i := 0; i < 3; i++ {
		s.Push(make([]complex128, 4))
	}
	if got := telemetry.Capture().Gauges["stream.daemon.depth.queue_depth"]; got != 3 {
		t.Fatalf("queue_depth with 3 buffered chunks = %d, want 3", got)
	}

	close(proc.gate)
	s.Close()
	d.Drain()
	if proc.chunks != 4 {
		t.Fatalf("processor saw %d chunks, want 4", proc.chunks)
	}
	snap := telemetry.Capture()
	if got := snap.Gauges["stream.daemon.depth.queue_depth"]; got != 0 {
		t.Fatalf("queue_depth after drain = %d, want 0", got)
	}
	lat, ok := snap.Histograms["stream.daemon.depth.chunk"]
	if !ok || lat.Count != 4 {
		t.Fatalf("chunk latency histogram = (%v, count %d), want 4 observations", ok, lat.Count)
	}
	var bucketSum uint64
	for _, b := range lat.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != lat.Count {
		t.Fatalf("latency buckets sum to %d, want %d", bucketSum, lat.Count)
	}
}

// TestDaemonStreamsMatchBatch is the serve-mode identity check: eight
// concurrent streams — four covert receivers and four keylog detectors,
// fed the same captures at different chunk sizes by competing producer
// goroutines over a three-worker pool — all finalize to outputs
// DeepEqual to their batch pipelines. This is the same contract CI's
// daemon smoke job checks end-to-end through `emscope serve -verify`.
func TestDaemonStreamsMatchBatch(t *testing.T) {
	pc := prepCovert(t, true, 2)
	defer pc.Cap.Recycle()
	pk := prepKeylog(t, false, 2)
	defer pk.Cap.Recycle()
	batchC := covert.Demodulate(pc.Cap, pc.RXCfg)
	batchK := keylog.Detect(pk.Cap, pk.DetCfg)

	d := stream.NewDaemon(3)
	var wg sync.WaitGroup
	sizes := []int{1000, 4096, 12345, 1 << 20}

	covRX := make([]*stream.CovertReceiver, len(sizes))
	keyDet := make([]*stream.KeylogDetector, len(sizes))
	for i, size := range sizes {
		rx, err := stream.NewCovertReceiver(pc.RXCfg, pc.Cap.SampleRate, pc.Cap.CenterFreqHz)
		if err != nil {
			t.Fatalf("NewCovertReceiver: %v", err)
		}
		covRX[i] = rx
		sc := d.Attach(fmt.Sprintf("cov%d", i), rx, 4)
		det, err := stream.NewKeylogDetector(pk.DetCfg, pk.Cap.SampleRate, pk.Cap.CenterFreqHz)
		if err != nil {
			t.Fatalf("NewKeylogDetector: %v", err)
		}
		keyDet[i] = det
		sk := d.Attach(fmt.Sprintf("key%d", i), det, 4)

		wg.Add(2)
		go func(s *stream.DaemonStream, size int) {
			defer wg.Done()
			for _, chunk := range stream.Chunks(pc.Cap.IQ, size) {
				s.Push(chunk)
			}
			s.Close()
		}(sc, size)
		go func(s *stream.DaemonStream, size int) {
			defer wg.Done()
			for _, chunk := range stream.Chunks(pk.Cap.IQ, size) {
				s.Push(chunk)
			}
			s.Close()
		}(sk, size)
	}
	wg.Wait()
	d.Drain()

	for i, rx := range covRX {
		if got := rx.Finalize(); !reflect.DeepEqual(got, batchC) {
			t.Errorf("covert stream %d (chunk %d) diverged from batch: stream bits %v, batch bits %v",
				i, sizes[i], got.Bits, batchC.Bits)
		}
	}
	for i, det := range keyDet {
		if got := det.Finalize(); !reflect.DeepEqual(got, batchK) {
			t.Errorf("keylog stream %d (chunk %d) diverged from batch: %d keystrokes, want %d",
				i, sizes[i], len(got.Keystrokes), len(batchK.Keystrokes))
		}
	}
}

// TestDaemonFlatStreamMemory pins the serve-mode memory envelope in the
// style of TestFlatReducerMemory: per-stream processor state must stay
// far under the raw capture it replaces (the whole point of streaming —
// a receiver that buffered its input would hold 16 bytes per sample),
// must be identical across concurrent streams fed the same input, and
// doubling the stream count must scale total state linearly — no hidden
// per-chunk accumulation anywhere in the daemon path.
func TestDaemonFlatStreamMemory(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	rawBytes := 16 * len(p.Cap.IQ)

	run := func(streams int) (total int, per []int) {
		d := stream.NewDaemon(4)
		rxs := make([]*stream.CovertReceiver, streams)
		var wg sync.WaitGroup
		for i := range rxs {
			rx, err := stream.NewCovertReceiver(p.RXCfg, p.Cap.SampleRate, p.Cap.CenterFreqHz)
			if err != nil {
				t.Fatalf("NewCovertReceiver: %v", err)
			}
			rxs[i] = rx
			s := d.Attach(fmt.Sprintf("mem%d", i), rx, 4)
			wg.Add(1)
			go func(s *stream.DaemonStream) {
				defer wg.Done()
				for _, chunk := range stream.Chunks(p.Cap.IQ, 4096) {
					s.Push(chunk)
				}
				s.Close()
			}(s)
		}
		wg.Wait()
		d.Drain()
		per = make([]int, streams)
		for i, rx := range rxs {
			per[i] = rx.StateBytes()
			total += per[i]
		}
		return total, per
	}

	total8, per8 := run(8)
	for i, b := range per8 {
		if b != per8[0] {
			t.Fatalf("stream %d holds %d state bytes, stream 0 holds %d — identical inputs must leave identical state", i, b, per8[0])
		}
	}
	if per8[0] > rawBytes/4 {
		t.Fatalf("per-stream state %d bytes is not flat against the %d-byte raw capture it replaces", per8[0], rawBytes)
	}
	total16, _ := run(16)
	if lo, hi := 2*total8*9/10, 2*total8*11/10; total16 < lo || total16 > hi {
		t.Fatalf("16-stream state %d bytes vs 8-stream %d — total must scale linearly in streams (flat per stream)", total16, total8)
	}
}

// TestDaemonDrainNoGoroutineLeak: after Drain returns, every worker
// and producer goroutine is gone.
func TestDaemonDrainNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	d := stream.NewDaemon(6)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		proc := &slowProc{delay: 50 * time.Microsecond}
		s := d.Attach(fmt.Sprintf("leak%d", i), proc, 2)
		wg.Add(1)
		go func(s *stream.DaemonStream) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				s.Push(make([]complex128, 16))
			}
			s.Close()
		}(s)
	}
	wg.Wait()
	d.Drain()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked through Drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonDoneSemantics: Done closes only after close-plus-drain, and
// a stream closed while empty finishes immediately.
func TestDaemonDoneSemantics(t *testing.T) {
	d := stream.NewDaemon(1)
	defer d.Drain()
	s := d.Attach("done", &slowProc{}, 2)
	select {
	case <-s.Done():
		t.Fatal("Done closed before the stream was closed")
	default:
	}
	s.Push(make([]complex128, 4))
	s.Close()
	select {
	case <-s.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never closed after close-plus-drain")
	}
	empty := d.Attach("done_empty", &slowProc{}, 2)
	empty.Close()
	select {
	case <-empty.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("empty closed stream never reported done")
	}
}
