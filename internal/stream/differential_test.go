package stream_test

import (
	"reflect"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/faults"
	"pmuleak/internal/keylog"
	"pmuleak/internal/sdr"
	"pmuleak/internal/stream"
)

// chunkSweep returns the chunk sizes the equivalence tests exercise for
// a capture of n samples: size 1 (every sample its own chunk, so every
// splice seam left by a fault-injected block drop coincides with a
// chunk boundary), sizes not divisible by the STFT hop, a size leaving
// a final partial chunk smaller than one STFT frame, the exact capture
// length, and a chunk larger than the whole capture.
func chunkSweep(n int) []int {
	return []int{1, 7, 1000, 4096, 12345, n - 100, n, n + 999}
}

// covertFaults is the fault schedule the faulted covert cases inject:
// enough drop/gain/saturation events on a short capture to exercise the
// resync and retry machinery, with drops guaranteed (asserted below) so
// chunk boundaries land inside spliced regions.
func covertFaults() faults.Config {
	return faults.Config{
		DropRatePerS:     120,
		GainStepRatePerS: 15,
		GainStepMaxDB:    6,
	}
}

func prepCovert(t *testing.T, withFaults bool, parallelism int) *core.PreparedCovert {
	t.Helper()
	tb := core.NewTestbed(core.WithSeed(7))
	cfg := core.CovertConfig{PayloadBits: 64, Parallelism: parallelism}
	if withFaults {
		cfg.Faults = covertFaults()
		cfg.RXResync = true
		cfg.RXCarrierRetries = 2
	}
	p := tb.PrepareCovert(cfg)
	if withFaults && p.Faults.Drops == 0 {
		t.Fatalf("fault schedule injected no drops (report %+v); raise DropRatePerS", p.Faults)
	}
	return p
}

// TestCovertStreamEqualsBatch is the tentpole differential: for every
// chunk size in the sweep — hop-aligned or not — with faults off and
// on, at receiver parallelism 1 and 4, the streaming receiver's
// finalized Demod equals the batch Demodulate output field for field
// (decoded bits, BER inputs, traces, quality report).
func TestCovertStreamEqualsBatch(t *testing.T) {
	for _, tc := range []struct {
		name        string
		withFaults  bool
		parallelism int
	}{
		{"clean_jobs1", false, 1},
		{"clean_jobs4", false, 4},
		{"faulted_jobs1", true, 1},
		{"faulted_jobs4", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := prepCovert(t, tc.withFaults, tc.parallelism)
			defer p.Cap.Recycle()
			batch := covert.Demodulate(p.Cap, p.RXCfg)
			if !batch.CarrierFound {
				t.Fatalf("batch demod found no carrier (z=%.2f); the differential would be vacuous", batch.Quality.CarrierZ)
			}
			for _, size := range chunkSweep(len(p.Cap.IQ)) {
				rx, err := stream.NewCovertReceiver(p.RXCfg, p.Cap.SampleRate, p.Cap.CenterFreqHz)
				if err != nil {
					t.Fatalf("NewCovertReceiver: %v", err)
				}
				for _, chunk := range stream.Chunks(p.Cap.IQ, size) {
					rx.Push(chunk)
				}
				got := rx.Finalize()
				if !reflect.DeepEqual(got, batch) {
					t.Errorf("chunk size %d: streaming demod diverged from batch\nstream bits: %v\nbatch bits:  %v\nstream: %+v\nbatch:  %+v",
						size, got.Bits, batch.Bits, abbreviateDemod(got), abbreviateDemod(batch))
				}
			}
		})
	}
}

// abbreviateDemod trims the bulky trace fields for failure messages.
func abbreviateDemod(d *covert.Demod) covert.Demod {
	c := *d
	c.Y, c.Conv = nil, nil
	return c
}

// TestCovertStreamShortCapture pins the degenerate gate: a capture
// shorter than 4 FFT windows decodes to the same empty Demod on both
// paths, for chunk sizes below, at, and above the capture length.
func TestCovertStreamShortCapture(t *testing.T) {
	cfg := covert.DefaultRXConfig()
	cfg.ExpectedF0 = 360e3
	cap := &sdr.Capture{
		IQ:           make([]complex128, 4*cfg.FFTSize-1),
		SampleRate:   2.4e6,
		CenterFreqHz: 540e3,
	}
	batch := covert.Demodulate(cap, cfg)
	if batch.CarrierFound {
		t.Fatal("short capture unexpectedly found a carrier")
	}
	for _, size := range []int{1, 100, len(cap.IQ), len(cap.IQ) + 1} {
		rx, err := stream.NewCovertReceiver(cfg, cap.SampleRate, cap.CenterFreqHz)
		if err != nil {
			t.Fatalf("NewCovertReceiver: %v", err)
		}
		for _, chunk := range stream.Chunks(cap.IQ, size) {
			rx.Push(chunk)
		}
		if got := rx.Finalize(); !reflect.DeepEqual(got, batch) {
			t.Errorf("chunk %d: short-capture demod %+v, want %+v", size, got, batch)
		}
	}
}

// TestCovertStreamRequiresHint pins the streaming contract: without an
// ExpectedF0 hint the batch path falls back to blind PSD peak selection
// (a function of the finished capture), which the streaming receiver
// must refuse up front rather than silently diverge.
func TestCovertStreamRequiresHint(t *testing.T) {
	cfg := covert.DefaultRXConfig()
	if _, err := stream.NewCovertReceiver(cfg, 2.4e6, 540e3); err == nil {
		t.Fatal("NewCovertReceiver accepted a config without an ExpectedF0 hint")
	}
	cfg.ExpectedF0 = 360e3
	if _, err := stream.NewCovertReceiver(cfg, 2.4e6, 540e3); err != nil {
		t.Fatalf("NewCovertReceiver rejected a hinted config: %v", err)
	}
}

func prepKeylog(t *testing.T, withFaults bool, parallelism int) *core.PreparedKeylog {
	t.Helper()
	tb := core.NewTestbed(core.WithSeed(11))
	cfg := core.KeylogConfig{Words: 4, Parallelism: parallelism}
	if withFaults {
		cfg.Faults = faults.Config{DropRatePerS: 2, GainStepRatePerS: 0.5, GainStepMaxDB: 6}
		cfg.GapAware = true
	}
	p := tb.PrepareKeylog(cfg)
	if withFaults && p.Faults.Drops == 0 {
		t.Fatalf("fault schedule injected no drops (report %+v)", p.Faults)
	}
	return p
}

// TestKeylogStreamEqualsBatch: the streaming detector's finalized
// Detection equals keylog.Detect over the same capture for the full
// chunk sweep, faults off and on, parallelism 1 and 4. With faults on,
// the injected block drops delete samples before chunking, so the
// splice seams land mid-chunk for large sizes and exactly on chunk
// boundaries for size 1.
func TestKeylogStreamEqualsBatch(t *testing.T) {
	for _, tc := range []struct {
		name        string
		withFaults  bool
		parallelism int
	}{
		{"clean_jobs1", false, 1},
		{"clean_jobs4", false, 4},
		{"faulted_jobs1", true, 1},
		{"faulted_jobs4", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := prepKeylog(t, tc.withFaults, tc.parallelism)
			defer p.Cap.Recycle()
			batch := keylog.Detect(p.Cap, p.DetCfg)
			if len(batch.Keystrokes) == 0 {
				t.Fatal("batch detector found no keystrokes; the differential would be vacuous")
			}
			for _, size := range chunkSweep(len(p.Cap.IQ)) {
				det, err := stream.NewKeylogDetector(p.DetCfg, p.Cap.SampleRate, p.Cap.CenterFreqHz)
				if err != nil {
					t.Fatalf("NewKeylogDetector: %v", err)
				}
				for _, chunk := range stream.Chunks(p.Cap.IQ, size) {
					det.Push(chunk)
				}
				got := det.Finalize()
				if !reflect.DeepEqual(got, batch) {
					t.Errorf("chunk size %d: streaming detection diverged from batch\nstream: %d keystrokes, thr %v\nbatch:  %d keystrokes, thr %v",
						size, len(got.Keystrokes), got.Threshold, len(batch.Keystrokes), batch.Threshold)
				}
			}
		})
	}
}

// TestKeylogStreamShortCapture: a capture shorter than one STFT frame
// detects nothing on both paths.
func TestKeylogStreamShortCapture(t *testing.T) {
	cfg := keylog.DefaultDetectorConfig()
	cfg.ExpectedF0 = 360e3
	g, ok := keylog.PlanGeometry(cfg, 240e3)
	if !ok {
		t.Fatal("geometry unexpectedly degenerate")
	}
	cap := &sdr.Capture{
		IQ:           make([]complex128, g.FFTSize-1),
		SampleRate:   240e3,
		CenterFreqHz: 300e3,
	}
	batch := keylog.Detect(cap, cfg)
	for _, size := range []int{1, g.FFTSize / 3, len(cap.IQ) + 1} {
		det, err := stream.NewKeylogDetector(cfg, cap.SampleRate, cap.CenterFreqHz)
		if err != nil {
			t.Fatalf("NewKeylogDetector: %v", err)
		}
		for _, chunk := range stream.Chunks(cap.IQ, size) {
			det.Push(chunk)
		}
		if got := det.Finalize(); !reflect.DeepEqual(got, batch) {
			t.Errorf("chunk %d: short-capture detection %+v, want %+v", size, got, batch)
		}
	}
}

// TestKeylogStreamContract pins the two streaming prerequisites.
func TestKeylogStreamContract(t *testing.T) {
	cfg := keylog.DefaultDetectorConfig()
	if _, err := stream.NewKeylogDetector(cfg, 240e3, 300e3); err == nil {
		t.Fatal("NewKeylogDetector accepted a config without ExpectedF0")
	}
	cfg.ExpectedF0 = 360e3
	cfg.TrackBlock = 0
	if _, err := stream.NewKeylogDetector(cfg, 240e3, 300e3); err == nil {
		t.Fatal("NewKeylogDetector accepted TrackBlock == 0")
	}
	cfg.TrackBlock = keylog.DefaultDetectorConfig().TrackBlock
	if _, err := stream.NewKeylogDetector(cfg, 240e3, 300e3); err != nil {
		t.Fatalf("NewKeylogDetector rejected a valid streaming config: %v", err)
	}
}

// TestRunStreamMatchesRunBatch closes the loop at the result level: the
// core entry points produce identical scored results — decoded bits and
// BER for covert, keystroke precision/recall/F1 for keylog — through
// the batch and streaming receivers, at -jobs 1 and 4.
func TestRunStreamMatchesRunBatch(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		tb := core.NewTestbed(core.WithSeed(3))
		ccfg := core.CovertConfig{PayloadBits: 64, Parallelism: jobs}
		batchC := tb.RunCovert(ccfg)
		streamC, err := tb.RunCovertStream(ccfg, 10000)
		if err != nil {
			t.Fatalf("RunCovertStream: %v", err)
		}
		if !reflect.DeepEqual(batchC.Measurement, streamC.Measurement) {
			t.Errorf("jobs %d: covert measurement diverged: batch %+v stream %+v",
				jobs, batchC.Measurement, streamC.Measurement)
		}
		if !reflect.DeepEqual(batchC.Demod.Bits, streamC.Demod.Bits) {
			t.Errorf("jobs %d: covert bits diverged", jobs)
		}

		kcfg := core.KeylogConfig{Words: 3, Parallelism: jobs}
		batchK := tb.RunKeylog(kcfg)
		streamK, err := tb.RunKeylogStream(kcfg, 7777)
		if err != nil {
			t.Fatalf("RunKeylogStream: %v", err)
		}
		if !reflect.DeepEqual(batchK.Char, streamK.Char) {
			t.Errorf("jobs %d: keystroke scores diverged: batch %+v stream %+v",
				jobs, batchK.Char, streamK.Char)
		}
		if !reflect.DeepEqual(batchK.Detection, streamK.Detection) {
			t.Errorf("jobs %d: detections diverged", jobs)
		}
	}
}
