package stream

import (
	"fmt"
	"math/cmplx"

	"pmuleak/internal/dsp"
	"pmuleak/internal/keylog"
	"pmuleak/internal/telemetry"
)

var (
	strKeylogSamples = telemetry.NewCounter("stream.keylog.samples")
	strKeylogFrames  = telemetry.NewCounter("stream.keylog.frames")
	strKeylogBlocks  = telemetry.NewCounter("stream.keylog.blocks")
)

// KeylogStatus is the live view of an in-flight keystroke stream.
type KeylogStatus struct {
	// Samples, Frames, and Blocks count consumed IQ samples, completed
	// STFT frames, and flushed tracking blocks.
	Samples, Frames, Blocks int
	// CenterHz is the band tracker's current spike estimate (absolute
	// frequency), following the VRM clock's drift block by block.
	CenterHz float64
}

// KeylogDetector is the streaming form of keylog.Detect: push IQ chunks
// as they arrive, then Finalize for a Detection byte-identical to the
// batch detector over the concatenated samples.
//
// The STFT streams naturally — frames are non-overlapping, so at most
// one partial frame carries across a chunk boundary — and the §V-C band
// tracker is block-local by construction: as soon as one TrackBlock of
// frames accumulates, keylog.ScanBlock re-acquires the spike and
// reduces the block's magnitude rows to TrackBlock band samples, after
// which the rows are reused for the next block. Only the band trace
// (one float per frame, Samples/fftSize of them) accumulates for the
// global tail — normalization, threshold, interval passes — which
// Finalize delegates to keylog.FinishDetection. Retained state is
// O(TrackBlock·SampleRate + Samples/fftSize), independent of how long
// the stream runs between blocks.
//
// The streaming contract needs two config guarantees the batch path can
// do without: ExpectedF0 > 0 (the blind initial band pick is a function
// of the whole capture's mean spectrum) and TrackBlock > 0 (a zero
// TrackBlock means one block spanning the entire capture, which is the
// opposite of streaming). NewKeylogDetector rejects configs without
// them.
type KeylogDetector struct {
	cfg          keylog.DetectorConfig
	g            keylog.Geometry
	sampleRate   float64
	centerFreqHz float64
	degenerate   bool // window rounds to zero samples at this rate

	plan   *dsp.FFTPlan
	window []float64
	frame  []complex128 // partial frame carried across chunks
	buf    []complex128 // transform scratch

	rows    [][]float64 // reused block rows, len == frames in current block
	rowsBak []float64   // backing array for rows
	band    []float64
	center  int
	frames  int
	blocks  int

	total     int
	finalized bool
}

// NewKeylogDetector validates the config against the streaming
// contract and returns a detector with empty state.
func NewKeylogDetector(cfg keylog.DetectorConfig, sampleRate, centerFreqHz float64) (*KeylogDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("stream: SampleRate must be positive")
	}
	if cfg.ExpectedF0 <= 0 {
		return nil, fmt.Errorf("stream: keylog detector requires an ExpectedF0 hint (the blind band pick needs the full capture's mean spectrum)")
	}
	if cfg.TrackBlock <= 0 {
		return nil, fmt.Errorf("stream: keylog detector requires TrackBlock > 0 (a zero TrackBlock is one block spanning the whole capture)")
	}
	d := &KeylogDetector{cfg: cfg, sampleRate: sampleRate, centerFreqHz: centerFreqHz}
	g, ok := keylog.PlanGeometry(cfg, sampleRate)
	if !ok {
		// The batch path returns an empty Detection for captures that
		// cannot resolve the window; the streaming detector accepts the
		// samples and reports the same emptiness at Finalize.
		d.degenerate = true
		return d, nil
	}
	d.g = g
	d.plan = dsp.PlanFFT(g.FFTSize)
	d.window = dsp.Hann(g.FFTSize)
	d.frame = make([]complex128, 0, g.FFTSize)
	d.buf = make([]complex128, g.FFTSize)
	d.rowsBak = make([]float64, g.BlockFrames*g.FFTSize)
	d.rows = make([][]float64, 0, g.BlockFrames)
	d.center = dsp.FrequencyBin(cfg.ExpectedF0-centerFreqHz, g.FFTSize, sampleRate)
	return d, nil
}

// Push consumes one chunk of IQ samples. Not safe for concurrent use.
func (d *KeylogDetector) Push(chunk []complex128) {
	if d.finalized {
		panic("stream: Push after Finalize")
	}
	d.total += len(chunk)
	strKeylogSamples.Add(uint64(len(chunk)))
	if d.degenerate {
		return
	}
	for len(chunk) > 0 {
		take := d.g.FFTSize - len(d.frame)
		if take > len(chunk) {
			take = len(chunk)
		}
		d.frame = append(d.frame, chunk[:take]...)
		chunk = chunk[take:]
		if len(d.frame) == d.g.FFTSize {
			d.finishFrame()
		}
	}
}

// finishFrame transforms the completed frame into a magnitude row —
// the exact per-frame computation of the batch STFT's reference path —
// and flushes the block once TrackBlock frames have accumulated.
func (d *KeylogDetector) finishFrame() {
	copy(d.buf, d.frame)
	d.frame = d.frame[:0]
	dsp.ApplyWindow(d.buf, d.window)
	d.plan.Transform(d.buf)
	row := d.rowsBak[len(d.rows)*d.g.FFTSize : (len(d.rows)+1)*d.g.FFTSize]
	for i, v := range d.buf {
		row[i] = cmplx.Abs(v)
	}
	d.rows = append(d.rows, row)
	d.frames++
	strKeylogFrames.Inc()
	if len(d.rows) == d.g.BlockFrames {
		d.flushBlock()
	}
}

// flushBlock runs the §V-C per-block spike re-acquisition over the
// accumulated rows and appends the block's band-energy samples to the
// global trace; the rows are then reused for the next block.
func (d *KeylogDetector) flushBlock() {
	if len(d.rows) == 0 {
		return
	}
	lo := len(d.band)
	d.band = append(d.band, make([]float64, len(d.rows))...)
	d.center = keylog.ScanBlock(d.rows, d.band[lo:], d.center,
		d.g.FFTSize, d.g.SearchBins, d.cfg.BandBins)
	d.rows = d.rows[:0]
	d.blocks++
	strKeylogBlocks.Inc()
}

// Status reports the stream's live state.
func (d *KeylogDetector) Status() KeylogStatus {
	st := KeylogStatus{Samples: d.total, Frames: d.frames, Blocks: d.blocks}
	if !d.degenerate {
		st.CenterHz = d.centerFreqHz + dsp.BinFrequency(d.center, d.g.FFTSize, d.sampleRate)
	}
	return st
}

// StateBytes estimates the detector's retained memory: the block rows
// (bounded by TrackBlock) plus the band trace (one float per frame).
func (d *KeylogDetector) StateBytes() int {
	return cap(d.frame)*16 + cap(d.buf)*16 + cap(d.rowsBak)*8 +
		cap(d.window)*8 + cap(d.band)*8
}

// Finalize closes the stream, flushes the final (possibly partial)
// block, and runs the batch detector's global tail. The returned
// Detection is byte-identical to keylog.Detect over the concatenation
// of every pushed chunk. Further pushes panic.
func (d *KeylogDetector) Finalize() *keylog.Detection {
	d.finalized = true
	if d.degenerate || d.total < d.g.FFTSize {
		// Batch: a capture shorter than one STFT frame detects nothing.
		return &keylog.Detection{}
	}
	// Any trailing samples shorter than a frame are dropped, exactly as
	// the batch STFT drops them; the last block is allowed to be
	// partial, exactly as the batch block loop clamps its end.
	d.flushBlock()
	return keylog.FinishDetection(d.band, d.g.FrameDT, d.g.BlockFrames, d.cfg)
}
