package stream_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// panicProc panics on its nth Push — the chaos "worker kill" in
// miniature.
type panicProc struct {
	after int
	seen  int
}

func (p *panicProc) Push(c []complex128) {
	p.seen++
	if p.seen == p.after {
		panic(fmt.Sprintf("injected processor fault at chunk %d", p.seen))
	}
}

// recordProc records the first sample of every chunk; the first Push
// blocks on gate so the test can fill the ring behind a busy worker.
type recordProc struct {
	entered chan struct{}
	gate    chan struct{}
	vals    []float64
	gated   bool
}

func (p *recordProc) Push(c []complex128) {
	if !p.gated {
		p.gated = true
		p.entered <- struct{}{}
		<-p.gate
	}
	p.vals = append(p.vals, real(c[0]))
}

func chunkVal(v float64) []complex128 {
	c := make([]complex128, 4)
	for i := range c {
		c[i] = complex(v, 0)
	}
	return c
}

// TestPanicQuarantinesStreamNotWorker: a processor panic takes down
// its own stream — quarantined, Err set, Done closed, telemetry
// counted — while the single shared worker keeps serving the healthy
// stream untouched.
func TestPanicQuarantinesStreamNotWorker(t *testing.T) {
	panicsBefore := counter("stream.quarantine.panics")
	d := stream.NewDaemon(1)
	bad := d.Attach("quar_bad", &panicProc{after: 1}, 4)
	goodProc := &countProc{}
	good := d.Attach("quar_good", goodProc, 4)

	bad.Push(chunkVal(1))
	select {
	case <-bad.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("panicking stream never reached Done")
	}
	if !bad.Quarantined() {
		t.Fatal("panicking stream not quarantined")
	}
	if bad.Err() == nil {
		t.Fatal("quarantined stream has nil Err")
	}
	if bad.Push(chunkVal(2)) {
		t.Fatal("Push into a quarantined stream succeeded")
	}
	if got := counter("stream.quarantine.panics"); got != panicsBefore+1 {
		t.Fatalf("stream.quarantine.panics %d -> %d, want +1", panicsBefore, got)
	}
	if got := telemetry.Capture().Gauges["stream.daemon.quar_bad.quarantined"]; got != 1 {
		t.Fatalf("per-stream quarantined gauge = %d, want 1", got)
	}

	// The worker that recovered the panic must still drive other streams.
	for i := 0; i < 5; i++ {
		if !good.Push(chunkVal(float64(i))) {
			t.Fatalf("healthy stream refused chunk %d after sibling panic", i)
		}
	}
	good.Close()
	<-good.Done()
	if good.Quarantined() || goodProc.chunks != 5 {
		t.Fatalf("healthy stream damaged by sibling panic: quarantined=%v chunks=%d",
			good.Quarantined(), goodProc.chunks)
	}
	d.Drain()
}

// TestRingAbortUnblocksProducer is the satellite regression for the
// unbounded-blocking bug: a producer blocked in Push on a full ring
// must return (false) when the ring is aborted, not sleep forever on
// the condvar.
func TestRingAbortUnblocksProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	r := stream.NewRing(1)
	if !r.Push(chunkVal(0)) {
		t.Fatal("first push into empty ring refused")
	}
	got := make(chan bool, 1)
	go func() { got <- r.Push(chunkVal(1)) }() // blocks: ring full
	time.Sleep(20 * time.Millisecond)          // let it park on the condvar
	if n := r.Abort(); n != 1 {
		t.Fatalf("Abort discarded %d chunks, want 1", n)
	}
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Push into an aborted ring reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after Abort — the unbounded-blocking bug")
	}
	if ok, _ := r.Offer(chunkVal(2), stream.ShedOldest); ok {
		t.Fatal("Offer into an aborted ring reported success")
	}
	waitNoLeak(t, before)
}

// gatePanicProc blocks its first chunk on gate, then panics — the
// worst case for a producer: the ring backs up behind a processor
// that then dies.
type gatePanicProc struct {
	entered chan struct{}
	gate    chan struct{}
}

func (p *gatePanicProc) Push(c []complex128) {
	p.entered <- struct{}{}
	<-p.gate
	panic("injected fault while ring backed up")
}

// TestQuarantineUnblocksBlockedProducer: the daemon-level version of
// the Abort regression — a producer stuck in backpressure behind a
// wedged stream is released with Push -> false the moment the
// processor panics, and the discarded backlog is counted.
func TestQuarantineUnblocksBlockedProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	droppedBefore := counter("stream.quarantine.dropped_chunks")
	d := stream.NewDaemon(1)
	proc := &gatePanicProc{entered: make(chan struct{}), gate: make(chan struct{})}
	s := d.Attach("quar_unblock", proc, 1)

	s.Push(chunkVal(0))
	<-proc.entered // worker is inside Push, holding chunk 0
	if !s.Push(chunkVal(1)) {
		t.Fatal("buffered push refused")
	}
	blocked := make(chan bool, 1)
	go func() { blocked <- s.Push(chunkVal(2)) }() // ring full: blocks
	time.Sleep(20 * time.Millisecond)

	close(proc.gate) // processor panics -> quarantine -> ring abort
	select {
	case ok := <-blocked:
		if ok {
			t.Fatal("blocked Push into a quarantined stream reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after quarantine — the unbounded-blocking bug")
	}
	<-s.Done()
	if !s.Quarantined() {
		t.Fatal("stream not quarantined after processor panic")
	}
	if got := counter("stream.quarantine.dropped_chunks"); got != droppedBefore+1 {
		t.Fatalf("stream.quarantine.dropped_chunks %d -> %d, want +1 (the buffered chunk)",
			droppedBefore, got)
	}
	d.Drain()
	waitNoLeak(t, before)
}

// TestDrainRacesMidChunkPanic: Drain called concurrently with
// producers pushing into streams whose processors panic mid-chunk must
// terminate — no deadlock between quarantine, ring abort, and the
// drain barrier. Run under -race in CI.
func TestDrainRacesMidChunkPanic(t *testing.T) {
	d := stream.NewDaemon(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		s := d.Attach(fmt.Sprintf("drace%d", i), &panicProc{after: 1 + i%3}, 2)
		wg.Add(1)
		go func(s *stream.DaemonStream) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if !s.Push(chunkVal(float64(j))) {
					return
				}
			}
			s.Close()
		}(s)
	}
	done := make(chan struct{})
	go func() {
		d.Drain() // races the pushes above
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked racing mid-chunk panics")
	}
	wg.Wait()
}

// TestAttachAdmissionLimit: WithMaxStreams refuses the N+1th stream
// with an error (counted as shed), and a slot freed by a finished
// stream is reusable.
func TestAttachAdmissionLimit(t *testing.T) {
	rejectedBefore := counter("stream.shed.attach_rejected")
	d := stream.NewDaemon(1, stream.WithMaxStreams(2))
	a, err := d.AttachE("adm0", &countProc{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AttachE("adm1", &countProc{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AttachE("adm2", &countProc{}, 2); err == nil {
		t.Fatal("third attach admitted past WithMaxStreams(2)")
	}
	if got := counter("stream.shed.attach_rejected"); got != rejectedBefore+1 {
		t.Fatalf("stream.shed.attach_rejected %d -> %d, want +1", rejectedBefore, got)
	}

	a.Close()
	<-a.Done()
	c, err := d.AttachE("adm2", &countProc{}, 2)
	if err != nil {
		t.Fatalf("attach after a slot freed: %v", err)
	}
	b.Close()
	c.Close()
	d.Drain()
}

// TestShedOldest: under ShedOldest a full ring evicts its oldest
// buffered chunk for each new arrival — the producer never blocks, the
// freshest window survives, and every eviction is counted globally and
// per stream.
func TestShedOldest(t *testing.T) {
	shedBefore := counter("stream.shed.chunks")
	d := stream.NewDaemon(1, stream.WithShedPolicy(stream.ShedOldest))
	proc := &recordProc{entered: make(chan struct{}), gate: make(chan struct{})}
	s := d.Attach("shed_old", proc, 2)

	s.Push(chunkVal(0))
	<-proc.entered // worker holds chunk 0; ring is empty
	for v := 1; v <= 4; v++ {
		doneCh := make(chan bool, 1)
		go func(v int) { doneCh <- s.Push(chunkVal(float64(v))) }(v)
		select {
		case ok := <-doneCh:
			if !ok {
				t.Fatalf("ShedOldest push %d refused", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("ShedOldest push %d blocked — shedding must never backpressure", v)
		}
	}
	if s.Pending() != 2 {
		t.Fatalf("ring holds %d chunks, want 2 after eviction", s.Pending())
	}
	close(proc.gate)
	s.Close()
	<-s.Done()
	d.Drain()

	want := []float64{0, 3, 4} // 1 and 2 evicted by 3 and 4
	if len(proc.vals) != len(want) {
		t.Fatalf("processed %v, want %v", proc.vals, want)
	}
	for i, v := range want {
		if proc.vals[i] != v {
			t.Fatalf("processed %v, want %v", proc.vals, want)
		}
	}
	if got := counter("stream.shed.chunks"); got != shedBefore+2 {
		t.Fatalf("stream.shed.chunks %d -> %d, want +2", shedBefore, got)
	}
	if got := counter("stream.daemon.shed_old.shed"); got != 2 {
		t.Fatalf("per-stream shed counter = %d, want 2", got)
	}
}

// TestShedNewest: under ShedNewest a full ring drops the incoming
// chunk instead — the oldest buffered window survives.
func TestShedNewest(t *testing.T) {
	d := stream.NewDaemon(1, stream.WithShedPolicy(stream.ShedNewest))
	proc := &recordProc{entered: make(chan struct{}), gate: make(chan struct{})}
	s := d.Attach("shed_new", proc, 2)

	s.Push(chunkVal(0))
	<-proc.entered
	for v := 1; v <= 4; v++ {
		if !s.Push(chunkVal(float64(v))) {
			t.Fatalf("ShedNewest push %d refused", v)
		}
	}
	close(proc.gate)
	s.Close()
	<-s.Done()
	d.Drain()

	want := []float64{0, 1, 2} // 3 and 4 dropped on arrival
	if len(proc.vals) != len(want) {
		t.Fatalf("processed %v, want %v", proc.vals, want)
	}
	for i, v := range want {
		if proc.vals[i] != v {
			t.Fatalf("processed %v, want %v", proc.vals, want)
		}
	}
	if got := counter("stream.daemon.shed_new.shed"); got != 2 {
		t.Fatalf("per-stream shed counter = %d, want 2", got)
	}
}
