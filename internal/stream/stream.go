// Package stream turns the repo's batch receive pipelines into
// incremental, bounded-memory stream processors — the shape of the
// long-lived attack monitor the paper's threat model implies (§V runs
// continuous near-field monitoring; an always-on receiver cannot hold
// the whole capture).
//
// Two processors mirror the two batch pipelines:
//
//   - CovertReceiver streams §IV-B: an online Welch PSD accumulator, a
//     resonator bank carried sample-to-sample across chunk boundaries
//     (one decimated acquisition trace per carrier-retry widen level),
//     and a running carrier/period tracker. Finalize hands the compact
//     decimated trace to covert.DemodulateTrace — the exact batch back
//     half — so the decoded bits are byte-identical to
//     covert.Demodulate over the concatenated samples.
//
//   - KeylogDetector streams §V-C: an online non-overlapping STFT with
//     the partial frame carried across chunk boundaries, per-block
//     spike re-acquisition through keylog.ScanBlock as each TrackBlock
//     fills, and keylog.FinishDetection over the accumulated band
//     trace at Finalize — byte-identical to keylog.Detect.
//
// The memory contract is the point: a CovertReceiver holds O(FFTSize +
// n/DecimateFactor) floats instead of the 16 n bytes of raw IQ, and a
// KeylogDetector holds O(TrackBlock·rate + n/fftSize). Both processors
// consume chunks of any size — including size 1, chunks larger than
// the whole capture, and sizes not divisible by the STFT hop — and the
// differential tests pin bit-equality against the batch pipelines for
// all of them.
//
// Ring is the chunked ring-buffer source that feeds a processor from
// another goroutine with bounded buffering and blocking backpressure;
// Daemon multiplexes many Ring→processor streams over a fixed worker
// pool (see daemon.go).
package stream

import (
	"fmt"
	"sync"
)

// Ring is a bounded FIFO of sample chunks — the hand-off buffer between
// a capture producer and a stream processor. Push blocks while the ring
// is full (backpressure: a slow consumer throttles its producer instead
// of buffering unboundedly) and Pop blocks while it is empty. Close
// wakes everyone: pushes to a closed ring are refused, pops drain the
// remaining chunks and then report done. Safe for any number of
// producers and consumers.
type Ring struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	slots    [][]complex128
	head     int // index of the oldest chunk
	count    int
	closed   bool
	stalls   uint64 // pushes that had to wait on a full ring
}

// NewRing returns a ring holding at most capacity chunks.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic(fmt.Sprintf("stream: Ring capacity %d must be >= 1", capacity))
	}
	r := &Ring{slots: make([][]complex128, capacity)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Push appends a chunk, blocking while the ring is full. It reports
// false — and discards the chunk — when the ring is (or becomes)
// closed. The ring keeps the slice; the producer must not reuse it
// until the consumer is done with it.
func (r *Ring) Push(chunk []complex128) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == len(r.slots) && !r.closed {
		r.stalls++
	}
	for r.count == len(r.slots) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		return false
	}
	r.slots[(r.head+r.count)%len(r.slots)] = chunk
	r.count++
	r.notEmpty.Signal()
	return true
}

// Offer is Push under an explicit overload policy. With ShedBlock it is
// exactly Push. With ShedNewest a full ring discards the offered chunk;
// with ShedOldest it evicts the oldest buffered chunk to make room —
// either way the producer never blocks. ok reports whether the ring is
// still open (mirroring Push's return); shed counts chunks discarded by
// this call (0 or 1).
func (r *Ring) Offer(chunk []complex128, policy ShedPolicy) (ok bool, shed int) {
	if policy == ShedBlock {
		return r.Push(chunk), 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, 0
	}
	if r.count == len(r.slots) {
		switch policy {
		case ShedNewest:
			return true, 1
		case ShedOldest:
			r.slots[r.head] = nil
			r.head = (r.head + 1) % len(r.slots)
			r.count--
			shed = 1
		}
	}
	r.slots[(r.head+r.count)%len(r.slots)] = chunk
	r.count++
	r.notEmpty.Signal()
	return true, shed
}

// Pop removes the oldest chunk, blocking while the ring is empty. ok is
// false once the ring is closed and fully drained.
func (r *Ring) Pop() (chunk []complex128, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	return r.popLocked()
}

// TryPop is Pop without blocking: ok is false when the ring is empty
// (drained or not). The daemon's workers use it so an empty ring parks
// the stream instead of a worker.
func (r *Ring) TryPop() (chunk []complex128, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popLocked()
}

func (r *Ring) popLocked() ([]complex128, bool) {
	if r.count == 0 {
		return nil, false
	}
	chunk := r.slots[r.head]
	r.slots[r.head] = nil
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	r.notFull.Signal()
	return chunk, true
}

// Close refuses further pushes and lets pops drain what remains.
// Idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}

// Abort closes the ring AND discards everything still buffered,
// returning the discarded chunk count. This is the quarantine path's
// unblock-everyone hammer: a producer blocked in Push against a full
// ring wakes immediately and sees the refusal, instead of waiting
// forever on a consumer that will never pop again (the goroutine leak
// the abandoned-stream regression test pins). Idempotent; an Abort
// after Close just drops the leftovers.
func (r *Ring) Abort() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	n := r.count
	for i := 0; i < n; i++ {
		r.slots[(r.head+i)%len(r.slots)] = nil
	}
	r.head, r.count = 0, 0
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	return n
}

// Len returns the number of buffered chunks.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Drained reports whether the ring is closed and empty — the stream's
// end-of-input condition.
func (r *Ring) Drained() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed && r.count == 0
}

// Stalls returns how many pushes found the ring full and had to wait —
// the backpressure event count.
func (r *Ring) Stalls() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stalls
}

// Chunks slices iq into consecutive chunks of the given size (the last
// one shorter when the length is not a multiple). The chunks alias iq.
// size larger than the signal yields a single chunk; size must be
// positive.
func Chunks(iq []complex128, size int) [][]complex128 {
	if size < 1 {
		panic(fmt.Sprintf("stream: chunk size %d must be >= 1", size))
	}
	out := make([][]complex128, 0, (len(iq)+size-1)/size)
	for lo := 0; lo < len(iq); lo += size {
		hi := lo + size
		if hi > len(iq) {
			hi = len(iq)
		}
		out = append(out, iq[lo:hi])
	}
	return out
}
