package stream

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// Retry telemetry for supervised sources. attempts counts every
// stall/error retry, restarts counts escalations to Restarter.Restart
// (the carrier re-acquisition analogue), giveups counts sources
// abandoned to quarantine after the full budget.
var (
	retryAttempts = telemetry.NewCounter("stream.retry.attempts")
	retryRestarts = telemetry.NewCounter("stream.retry.restarts")
	retryGiveups  = telemetry.NewCounter("stream.retry.giveups")
)

// Source is a pull-based chunk producer for a supervised stream: Next
// returns the next chunk of IQ samples, io.EOF at the clean end of the
// capture, or another error for a transient acquisition failure. The
// supervisor owns the call schedule; Next is never called concurrently,
// but an abandoned call (one that outlived its stall deadline) may
// still be running when the next one would start — the supervisor waits
// for it instead of overlapping calls.
type Source interface {
	Next() ([]complex128, error)
}

// Restarter is an optional Source capability: a full re-acquisition
// reset, the streaming analogue of the batch receiver's carrier retry
// widen (§IV-B). A supervisor that exhausts its per-chunk retry budget
// invokes Restart once — a success refills the budget, a failure (or a
// second exhaustion) gives the stream up to quarantine.
type Restarter interface {
	Restart() error
}

// SliceSource serves a fixed in-memory capture as uniform chunks — the
// Source used by emscope serve and the tests, and the restore path's
// replay vehicle: build it over iq[consumed:] and the supervisor
// resumes exactly where the checkpoint left off.
type SliceSource struct {
	iq   []complex128
	size int
	off  int
}

// NewSliceSource chunks iq into size-sample pieces (last one shorter).
func NewSliceSource(iq []complex128, size int) *SliceSource {
	if size < 1 {
		panic(fmt.Sprintf("stream: SliceSource chunk size %d must be >= 1", size))
	}
	return &SliceSource{iq: iq, size: size}
}

// Next returns the next chunk, or io.EOF past the end. The chunk
// aliases the backing slice.
func (s *SliceSource) Next() ([]complex128, error) {
	if s.off >= len(s.iq) {
		return nil, io.EOF
	}
	hi := s.off + s.size
	if hi > len(s.iq) {
		hi = len(s.iq)
	}
	chunk := s.iq[s.off:hi]
	s.off = hi
	return chunk, nil
}

// SuperviseConfig tunes a supervised source's failure handling. The
// zero value gets sane defaults from withDefaults; Seed keys the
// backoff jitter substream so two runs with the same seed sleep the
// same schedule — retry timing is replayable like everything else.
type SuperviseConfig struct {
	// StallDeadline bounds one Next call; 0 disables the watchdog
	// (Next may block forever).
	StallDeadline time.Duration
	// MaxRetries is the consecutive stall/error budget before
	// escalating to Restart (and after a restart, before giving up).
	MaxRetries int
	// BackoffBase is the first retry delay; each further retry doubles
	// it up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter scales the ± fraction applied to each delay (0.5 →
	// delays in [0.5d, 1.5d]), drawn from the seed-keyed substream.
	BackoffJitter float64
	// Seed keys the jitter substream together with the stream name.
	Seed int64
}

func (c SuperviseConfig) withDefaults() SuperviseConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.5
	}
	return c
}

// Supervised is a daemon stream fed by a supervised Source: a pump
// goroutine pulls chunks, enforces the stall deadline, retries with
// seed-keyed exponential backoff, escalates to Restart, and finally
// quarantines the stream if the source never recovers. Wait blocks
// until both the pump and the stream are finished.
type Supervised struct {
	*DaemonStream
	pumpDone chan struct{}
}

// Wait blocks until the pump goroutine has exited and the stream's
// buffered chunks are fully processed (or the stream was quarantined).
func (sv *Supervised) Wait() {
	<-sv.pumpDone
	<-sv.Done()
}

// Supervise attaches a stream (through admission control) and starts a
// pump goroutine feeding it from src under cfg's failure policy. The
// stream closes cleanly when src returns io.EOF; it is quarantined
// (quarStalls, stream.retry.giveups) when the retry-then-restart budget
// is exhausted.
func (d *Daemon) Supervise(name string, proc Processor, queueCap int, src Source, cfg SuperviseConfig) (*Supervised, error) {
	s, err := d.AttachE(name, proc, queueCap)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	sv := &Supervised{DaemonStream: s, pumpDone: make(chan struct{})}
	go sv.pump(src, cfg)
	return sv, nil
}

type nextResult struct {
	chunk []complex128
	err   error
}

// pump is the supervision loop. One fetch goroutine per outstanding
// Next call delivers into a 1-buffered channel, so a call that outlives
// its deadline is not lost: the pump keeps waiting for the same pending
// result on the next attempt (Next is never called concurrently), and
// if the stream dies first the late result parks in the buffer and the
// fetch goroutine exits — no leak either way.
func (sv *Supervised) pump(src Source, cfg SuperviseConfig) {
	defer close(sv.pumpDone)
	h := fnv.New64a()
	h.Write([]byte(sv.Name()))
	rng := xrand.Sub(cfg.Seed, h.Sum64())
	restarter, _ := src.(Restarter)

	pending := make(chan nextResult, 1)
	inFlight := false
	retries := 0
	restarted := false

	fail := func(cause error) bool {
		// One consecutive failure (stall or source error). Returns
		// false when the stream should be given up.
		retries++
		retryAttempts.Inc()
		sv.retries.Inc()
		if retries > cfg.MaxRetries {
			if restarter != nil && !restarted {
				restarted = true
				retries = 0
				retryRestarts.Inc()
				if err := restarter.Restart(); err == nil {
					return true
				}
				retryGiveups.Inc()
				sv.d.quarantine(sv.DaemonStream, fmt.Errorf("stream: source restart failed after %v", cause), quarStalls)
				return false
			}
			retryGiveups.Inc()
			sv.d.quarantine(sv.DaemonStream, fmt.Errorf("stream: source gave up: %v", cause), quarStalls)
			return false
		}
		time.Sleep(sv.backoff(&rng, retries, cfg))
		return true
	}

	for {
		if !inFlight {
			go func() {
				c, err := src.Next()
				pending <- nextResult{c, err}
			}()
			inFlight = true
		}
		var res nextResult
		if cfg.StallDeadline > 0 {
			timer := time.NewTimer(cfg.StallDeadline)
			select {
			case res = <-pending:
				timer.Stop()
				inFlight = false
			case <-timer.C:
				if !fail(fmt.Errorf("stall: no chunk within %v", cfg.StallDeadline)) {
					return
				}
				continue
			}
		} else {
			res = <-pending
			inFlight = false
		}
		switch {
		case res.err == io.EOF:
			sv.Close()
			return
		case res.err != nil:
			if !fail(res.err) {
				return
			}
		default:
			if !sv.Push(res.chunk) {
				return
			}
			retries = 0
		}
	}
}

// backoff returns the attempt-th retry delay: exponential from
// BackoffBase, capped at BackoffMax, with ±BackoffJitter applied from
// the stream's deterministic substream.
func (sv *Supervised) backoff(rng *xrand.Lite, attempt int, cfg SuperviseConfig) time.Duration {
	d := cfg.BackoffBase
	for i := 1; i < attempt && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	scale := 1 + cfg.BackoffJitter*(2*rng.Float64()-1)
	if scale < 0 {
		scale = 0
	}
	return time.Duration(float64(d) * scale)
}
