package stream_test

import (
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"pmuleak/internal/covert"
	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// waitNoLeak polls until the goroutine count returns to the baseline,
// failing after the deadline — the shared leak-check idiom.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func counter(name string) uint64 { return telemetry.Capture().Counters[name] }

// countProc counts chunks and samples; reads are safe after the
// stream's Done (the daemon guarantees no concurrent Push).
type countProc struct {
	chunks  int
	samples int
}

func (p *countProc) Push(c []complex128) { p.chunks++; p.samples += len(c) }

func TestSliceSource(t *testing.T) {
	iq := make([]complex128, 10)
	for i := range iq {
		iq[i] = complex(float64(i), 0)
	}
	src := stream.NewSliceSource(iq, 4)
	var got []complex128
	sizes := []int{}
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		sizes = append(sizes, len(c))
		got = append(got, c...)
	}
	if !reflect.DeepEqual(sizes, []int{4, 4, 2}) {
		t.Fatalf("chunk sizes = %v, want [4 4 2]", sizes)
	}
	if !reflect.DeepEqual(got, iq) {
		t.Fatalf("concatenated chunks differ from the source slice")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next past EOF = %v, want io.EOF", err)
	}
}

// stallSource serves fixed chunks but sleeps (or blocks on a channel)
// before scheduled ones, and optionally fails some with a transient
// error. A blocked Next is released either by closing its channel from
// the test, or — when restartable — by Restart closing the kick
// channel (maps are only ever touched from inside Next, which the
// supervisor serializes, so there is no shared-map race with Restart).
type stallSource struct {
	chunks      [][]complex128
	idx         int
	sleepAt     map[int]time.Duration
	blockAt     map[int]chan struct{}
	errAt       map[int]int // index -> remaining transient failures
	restartable bool
	kick        chan struct{} // closed by a successful Restart
	restarts    int           // written in the pump, read after Wait
}

func (s *stallSource) Next() ([]complex128, error) {
	if s.idx >= len(s.chunks) {
		return nil, io.EOF
	}
	if n := s.errAt[s.idx]; n > 0 {
		s.errAt[s.idx] = n - 1
		return nil, errors.New("transient acquisition failure")
	}
	if d, ok := s.sleepAt[s.idx]; ok {
		delete(s.sleepAt, s.idx)
		time.Sleep(d)
	}
	if ch, ok := s.blockAt[s.idx]; ok {
		delete(s.blockAt, s.idx)
		select {
		case <-ch:
		case <-s.kick: // nil when not restartable: blocks forever
		}
	}
	c := s.chunks[s.idx]
	s.idx++
	return c, nil
}

func (s *stallSource) Restart() error {
	if !s.restartable {
		return errors.New("no re-acquisition available")
	}
	s.restarts++
	close(s.kick)
	return nil
}

func mkChunks(n, size int) [][]complex128 {
	out := make([][]complex128, n)
	for i := range out {
		c := make([]complex128, size)
		for j := range c {
			c[j] = complex(float64(i), float64(j))
		}
		out[i] = c
	}
	return out
}

// TestSuperviseCleanRunMatchesBatch: the supervision plumbing (pump
// goroutine, watchdog timers, SliceSource) is transparent — a clean
// supervised covert stream finalizes byte-identical to batch.
func TestSuperviseCleanRunMatchesBatch(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	batch := covert.Demodulate(p.Cap, p.RXCfg)
	d := stream.NewDaemon(2)
	rx := freshCovert(t, p.RXCfg, p.Cap)
	sv, err := d.Supervise("sup_clean", rx, 4, stream.NewSliceSource(p.Cap.IQ, 12345), stream.SuperviseConfig{
		StallDeadline: 2 * time.Second,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	sv.Wait()
	if sv.Quarantined() {
		t.Fatalf("clean run quarantined: %v", sv.Err())
	}
	d.Drain()
	if got := rx.Finalize(); !reflect.DeepEqual(got, batch) {
		t.Fatal("supervised stream diverged from batch")
	}
}

// TestSuperviseStallRetryRecovers: a source stall longer than the
// deadline but shorter than the retry budget is absorbed — retries are
// counted, the chunk eventually arrives, and the stream completes with
// every chunk intact.
func TestSuperviseStallRetryRecovers(t *testing.T) {
	attemptsBefore := counter("stream.retry.attempts")
	chunks := mkChunks(6, 32)
	src := &stallSource{chunks: chunks, sleepAt: map[int]time.Duration{2: 80 * time.Millisecond}}
	proc := &countProc{}
	d := stream.NewDaemon(1)
	sv, err := d.Supervise("sup_stall", proc, 2, src, stream.SuperviseConfig{
		StallDeadline: 15 * time.Millisecond,
		MaxRetries:    10,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv.Wait()
	d.Drain()
	if sv.Quarantined() {
		t.Fatalf("recoverable stall quarantined the stream: %v", sv.Err())
	}
	if proc.chunks != len(chunks) {
		t.Fatalf("processed %d chunks, want %d (stall must not drop data)", proc.chunks, len(chunks))
	}
	if got := counter("stream.retry.attempts"); got <= attemptsBefore {
		t.Fatalf("stream.retry.attempts did not advance (%d -> %d)", attemptsBefore, got)
	}
	if got := counter("stream.daemon.sup_stall.retries"); got == 0 {
		t.Fatal("per-stream retries counter is zero after a stall")
	}
}

// TestSuperviseRestartEscalation: a stall that outlives the whole retry
// budget escalates to Restarter.Restart — the carrier re-acquisition
// analogue — which unblocks the source; the stream then completes with
// a refilled budget and no quarantine.
func TestSuperviseRestartEscalation(t *testing.T) {
	restartsBefore := counter("stream.retry.restarts")
	chunks := mkChunks(5, 32)
	src := &stallSource{
		chunks:      chunks,
		blockAt:     map[int]chan struct{}{1: make(chan struct{})},
		restartable: true,
		kick:        make(chan struct{}),
	}
	proc := &countProc{}
	d := stream.NewDaemon(1)
	sv, err := d.Supervise("sup_restart", proc, 2, src, stream.SuperviseConfig{
		StallDeadline: 10 * time.Millisecond,
		MaxRetries:    2,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv.Wait()
	d.Drain()
	if sv.Quarantined() {
		t.Fatalf("restartable stall quarantined the stream: %v", sv.Err())
	}
	if src.restarts != 1 {
		t.Fatalf("source restarted %d times, want exactly 1", src.restarts)
	}
	if proc.chunks != len(chunks) {
		t.Fatalf("processed %d chunks, want %d", proc.chunks, len(chunks))
	}
	if got := counter("stream.retry.restarts"); got != restartsBefore+1 {
		t.Fatalf("stream.retry.restarts %d -> %d, want +1", restartsBefore, got)
	}
}

// TestSuperviseGiveupQuarantines: a source that never recovers and has
// no restart path is given up on — the stream is quarantined with the
// cause on Err, the giveup counted, Done closed (so Drain cannot hang)
// — and once the wedged Next returns, no goroutine survives.
func TestSuperviseGiveupQuarantines(t *testing.T) {
	before := runtime.NumGoroutine()
	giveupsBefore := counter("stream.retry.giveups")
	release := make(chan struct{})
	src := &stallSource{chunks: mkChunks(4, 32), blockAt: map[int]chan struct{}{1: release}}
	d := stream.NewDaemon(1)
	sv, err := d.Supervise("sup_giveup", &countProc{}, 2, src, stream.SuperviseConfig{
		StallDeadline: 10 * time.Millisecond,
		MaxRetries:    2,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv.Wait()
	if !sv.Quarantined() {
		t.Fatal("permanently stalled source was not quarantined")
	}
	if sv.Err() == nil {
		t.Fatal("quarantined stream has nil Err")
	}
	if sv.Push(make([]complex128, 4)) {
		t.Fatal("Push into a quarantined stream succeeded")
	}
	if got := counter("stream.retry.giveups"); got != giveupsBefore+1 {
		t.Fatalf("stream.retry.giveups %d -> %d, want +1", giveupsBefore, got)
	}
	if got := telemetry.Capture().Gauges["stream.daemon.sup_giveup.quarantined"]; got != 1 {
		t.Fatalf("per-stream quarantined gauge = %d, want 1", got)
	}
	d.Drain()
	// Unblock the abandoned Next so its watchdog goroutine can park its
	// late result and exit; then nothing must remain.
	close(release)
	waitNoLeak(t, before)
}

// TestSuperviseTransientSourceErrors: non-EOF errors from Next retry
// like stalls and succeed once the source recovers — no data lost, no
// quarantine.
func TestSuperviseTransientSourceErrors(t *testing.T) {
	chunks := mkChunks(5, 32)
	src := &stallSource{chunks: chunks, errAt: map[int]int{0: 2, 3: 1}}
	proc := &countProc{}
	d := stream.NewDaemon(1)
	sv, err := d.Supervise("sup_err", proc, 2, src, stream.SuperviseConfig{
		StallDeadline: time.Second,
		MaxRetries:    5,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv.Wait()
	d.Drain()
	if sv.Quarantined() {
		t.Fatalf("transient errors quarantined the stream: %v", sv.Err())
	}
	if proc.chunks != len(chunks) {
		t.Fatalf("processed %d chunks, want %d", proc.chunks, len(chunks))
	}
}

// TestSuperviseAdmission: Supervise goes through the same admission
// control as AttachE.
func TestSuperviseAdmission(t *testing.T) {
	d := stream.NewDaemon(1, stream.WithMaxStreams(1))
	sv, err := d.Supervise("sup_adm0", &countProc{}, 2, stream.NewSliceSource(make([]complex128, 64), 16), stream.SuperviseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Supervise("sup_adm1", &countProc{}, 2, stream.NewSliceSource(make([]complex128, 64), 16), stream.SuperviseConfig{}); err == nil {
		t.Fatal("Supervise ignored the admission limit")
	}
	sv.Wait()
	d.Drain()
}
