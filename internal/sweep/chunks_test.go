package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapChunksEquivalence: for every (jobs, chunk) combination —
// including chunks that do not divide n, chunks larger than n, and the
// degenerate chunk<1 — MapChunks must reproduce MapJobs's results
// exactly. This is the satellite's equivalence proof: chunking is an
// execution detail, never a semantic one.
func TestMapChunksEquivalence(t *testing.T) {
	const n = 257 // prime: no chunk size divides it evenly
	cell := func(i int) float64 {
		v := float64(i) * 1.7
		for k := 0; k < 50; k++ {
			v = v*0.999 + float64(k%7)*1e-3
		}
		return v
	}
	want := MapJobs(1, n, cell)
	for _, jobs := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{-1, 0, 1, 2, 7, 64, 256, 257, 1000} {
			got := MapChunks(jobs, n, chunk, cell)
			if len(got) != n {
				t.Fatalf("jobs=%d chunk=%d: %d results, want %d", jobs, chunk, len(got), n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("jobs=%d chunk=%d: cell %d differs: %v != %v",
						jobs, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMapChunksEveryCellOnce: chunked claiming still visits each index
// exactly once under contention, including a ragged final chunk.
func TestMapChunksEveryCellOnce(t *testing.T) {
	const n = 1003
	var counts [n]atomic.Int32
	MapChunks(8, n, 17, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestMapChunksEmpty mirrors the MapJobs contract for empty grids.
func TestMapChunksEmpty(t *testing.T) {
	if got := MapChunks(4, 0, 8, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

// TestMapChunksPanicPropagation: a panic anywhere inside a chunk is
// re-raised on the caller after the pool drains, like MapJobs.
func TestMapChunksPanicPropagation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "broken model" {
					t.Fatalf("jobs=%d: panic value = %v, want %q", jobs, r, "broken model")
				}
			}()
			MapChunks(jobs, 64, 8, func(i int) int {
				if i == 37 {
					panic("broken model")
				}
				return i
			})
		}()
	}
}

// TestMapChunksChunkOrder: within one chunk, cells run in ascending
// index order on a single goroutine — the property that lets the
// campaign layer keep sequential per-chunk state.
func TestMapChunksChunkOrder(t *testing.T) {
	const n, chunk = 96, 16
	var last [n / chunk]atomic.Int32
	for i := range last {
		last[i].Store(-1)
	}
	MapChunks(4, n, chunk, func(i int) int {
		c := i / chunk
		if prev := last[c].Load(); int(prev) != i%chunk-1 {
			t.Errorf("chunk %d: cell %d ran after in-chunk position %d", c, i, prev)
		}
		last[c].Store(int32(i % chunk))
		return i
	})
}

// BenchmarkMapTrivialCells is the satellite microbench: one million
// trivial cells, per-cell claiming versus chunked claiming. The
// per-cell path pays an atomic RMW plus two time.Now calls per cell;
// the chunked path amortizes both over 4096 cells. cmd/benchguard
// gates the ratio (internal/campaign/testdata/bench_baseline.json).
func BenchmarkMapTrivialCells(b *testing.B) {
	const n = 1 << 20
	cell := func(i int) int64 { return int64(i) * 2654435761 }
	for _, bc := range []struct {
		name  string
		chunk int
	}{
		{"path=percell", 1},
		{"path=chunked", 4096},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := MapChunks(4, n, bc.chunk, cell)
				if out[n-1] == 0 {
					b.Fatal("unexpected zero")
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkMapTrivialCellsSerial pins the serial (jobs=1) overhead the
// same way, isolating span bookkeeping from work-stealing contention.
func BenchmarkMapTrivialCellsSerial(b *testing.B) {
	const n = 1 << 20
	cell := func(i int) int64 { return int64(i) * 2654435761 }
	for _, chunk := range []int{1, 4096} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MapChunks(1, n, chunk, cell)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}
