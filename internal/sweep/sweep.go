// Package sweep is the experiment orchestration layer: it expresses an
// experiment as a grid of independent cells and executes the cells
// across a bounded worker pool, collecting results in cell order.
//
// A cell is one self-contained measurement — typically "build a seeded
// core.Testbed, run it, return the metrics". Cells must not share
// mutable state: each derives everything it needs from its index. Under
// that contract the grid's result is identical for every worker count,
// because cell i's value never depends on when (or on which goroutine)
// it was computed, and the reduction over the returned slice happens in
// index order on the caller's goroutine. Determinism is load-bearing
// here (see the internal/sim doc comment): the harness asserts that
// `-jobs 1` and `-jobs N` render byte-identical reports.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pmuleak/internal/telemetry"
)

// Orchestrator telemetry. Grid and cell counts are deterministic for a
// fixed workload at every jobs setting; cell durations are wall-clock.
// sweep.workers.active is the instantaneous occupancy (workers
// currently executing cells) and the sweep.cell histogram's sum_ns is
// the total busy time, so mean occupancy over a run is
// sum_ns / (wall time × worker count).
var (
	sweepGrids   = telemetry.NewCounter("sweep.grids")
	sweepCells   = telemetry.NewCounter("sweep.cells")
	sweepChunks  = telemetry.NewCounter("sweep.chunks")
	sweepActive  = telemetry.NewGauge("sweep.workers.active")
	sweepCellDur = telemetry.NewHistogram("sweep.cell")
)

// defaultJobs is the process-wide worker count used by Map when the
// caller passes the zero knob. Zero here in turn means runtime.NumCPU().
// Stored atomically so the harness can set it while experiments run on
// other goroutines (mirrors dsp.SetDefaultParallelism).
var defaultJobs atomic.Int32

// SetDefaultJobs sets the worker count Map resolves to: j == 0 restores
// the default (all CPUs), j == 1 forces the exact legacy serial loop,
// and j > 1 pins a specific worker count. Negative values are treated
// as 0.
func SetDefaultJobs(j int) {
	if j < 0 {
		j = 0
	}
	defaultJobs.Store(int32(j))
}

// DefaultJobs reports the current process-wide default (0 = all CPUs).
func DefaultJobs() int { return int(defaultJobs.Load()) }

// resolve turns a jobs knob into a concrete worker count.
func resolve(jobs int) int {
	if jobs == 0 {
		jobs = DefaultJobs()
	}
	if jobs == 0 {
		jobs = runtime.NumCPU()
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// Map runs cell(0) … cell(n-1) across the process-default worker pool
// and returns the results in cell order. See MapJobs.
func Map[T any](n int, cell func(i int) T) []T {
	return MapJobs(0, n, cell)
}

// MapJobs is Map with an explicit worker count: jobs == 0 uses the
// process default, jobs == 1 runs the cells sequentially on the calling
// goroutine in index order (the exact legacy serial path), jobs > 1
// fans the cells out over that many goroutines. Results always come
// back in cell order regardless of completion order.
//
// A panic inside a cell is re-raised on the calling goroutine once the
// pool has drained, so a broken model fails the same way it would have
// failed in a serial loop.
func MapJobs[T any](jobs, n int, cell func(i int) T) []T {
	return MapChunks(jobs, n, 1, cell)
}

// MapChunks is MapJobs with a work-stealing granularity knob: workers
// claim contiguous chunks of `chunk` cell indices at a time instead of
// single cells, and the sweep.cell span covers one chunk instead of one
// cell. For experiment-sized cells (milliseconds each) chunk == 1 is
// right — it gives the finest load balancing and per-cell latency
// telemetry. For campaign-sized grids (millions of microsecond cells)
// the per-cell atomic claim and span bookkeeping dominate the cells
// themselves; batching amortizes both to noise (see
// BenchmarkMapTrivialCells). chunk < 1 is treated as 1.
//
// Within a chunk the cells run in ascending index order on one
// goroutine, so a chunk is also the natural unit of shard-local
// sequential state for the campaign layer. Results are byte-identical
// to MapJobs for every (jobs, chunk): cell i's value still depends only
// on i.
func MapChunks[T any](jobs, n, chunk int, cell func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	sweepGrids.Inc()
	sweepCells.Add(uint64(n))
	out := make([]T, n)
	w := resolve(jobs)
	chunks := (n + chunk - 1) / chunk
	sweepChunks.Add(uint64(chunks))
	if w > chunks {
		w = chunks
	}
	if w == 1 {
		sweepActive.Add(1)
		defer sweepActive.Add(-1)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			sp := sweepCellDur.Start()
			for i := lo; i < hi; i++ {
				out[i] = cell(i)
			}
			sp.End()
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first cell panic, re-raised on the caller
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sweepActive.Add(1)
			defer sweepActive.Add(-1)
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				sp := sweepCellDur.Start()
				for i := lo; i < hi; i++ {
					out[i] = cell(i)
				}
				sp.End()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r.(*any))
	}
	return out
}
