package sweep

import (
	"sync/atomic"
	"testing"
)

// TestMapJobsOrder checks results land at their own index for every
// worker count, including pools larger than the grid.
func TestMapJobsOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 3, 4, 17} {
		got := MapJobs(jobs, 10, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: cell %d = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestMapJobsSerialEquivalence: the parallel grid must reproduce the
// serial grid exactly — the bit-identical contract the experiment
// runners rely on.
func TestMapJobsSerialEquivalence(t *testing.T) {
	cell := func(i int) float64 {
		v := float64(i) * 1.7
		for k := 0; k < 100; k++ {
			v = v*0.999 + float64(k%7)*1e-3
		}
		return v
	}
	serial := MapJobs(1, 64, cell)
	for _, jobs := range []int{2, 4, 8} {
		par := MapJobs(jobs, 64, cell)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("jobs=%d: cell %d differs: %v != %v", jobs, i, par[i], serial[i])
			}
		}
	}
}

// TestMapJobsEveryCellOnce: each index is visited exactly once even
// under contention.
func TestMapJobsEveryCellOnce(t *testing.T) {
	const n = 200
	var counts [n]atomic.Int32
	MapJobs(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestMapJobsEmpty: n <= 0 yields nil without spawning workers.
func TestMapJobsEmpty(t *testing.T) {
	if got := MapJobs(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	if got := MapJobs(4, -3, func(i int) int { return i }); got != nil {
		t.Fatalf("n<0: got %v, want nil", got)
	}
}

// TestMapJobsPanicPropagation: a cell panic surfaces on the caller, as
// it would in a serial loop.
func TestMapJobsPanicPropagation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("jobs=%d: expected panic to propagate", jobs)
				}
				if s, ok := r.(string); !ok || s != "broken model" {
					t.Fatalf("jobs=%d: panic value = %v, want %q", jobs, r, "broken model")
				}
			}()
			MapJobs(jobs, 8, func(i int) int {
				if i == 5 {
					panic("broken model")
				}
				return i
			})
		}()
	}
}

// TestDefaultJobs: the process knob round-trips and negative clamps to
// zero (mirrors dsp.SetDefaultParallelism).
func TestDefaultJobs(t *testing.T) {
	t.Cleanup(func() { SetDefaultJobs(0) })
	SetDefaultJobs(3)
	if got := DefaultJobs(); got != 3 {
		t.Fatalf("DefaultJobs = %d, want 3", got)
	}
	SetDefaultJobs(-5)
	if got := DefaultJobs(); got != 0 {
		t.Fatalf("negative set: DefaultJobs = %d, want 0", got)
	}
	// Map must honor the process default (=serial here would also pass;
	// just check values are right with the knob at 2).
	SetDefaultJobs(2)
	got := Map(6, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Map cell %d = %d, want %d", i, v, i+1)
		}
	}
}
