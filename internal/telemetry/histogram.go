package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets. Bucket i
// (1-based) holds durations in [2^(i-1), 2^i) nanoseconds; the last
// bucket absorbs everything above ~2^39 ns (≈9 minutes), far beyond any
// single pipeline stage.
const histBuckets = 40

// Histogram is a log-bucketed duration histogram: counts fall into
// power-of-two nanosecond buckets, so forty buckets cover nanoseconds
// to minutes with a worst-case resolution of 2x — coarse for averages
// (the exact sum is kept separately) but exactly right for "where did
// the time go" questions. All methods are safe for concurrent use; an
// Observe is three atomic adds.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets + 1]atomic.Uint64 // [0] holds d <= 0
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// bucketIndex maps a duration to its bucket: 0 for non-positive
// durations, otherwise the position of the highest set bit of the
// nanosecond count, clamped to the top bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i > histBuckets {
		i = histBuckets
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Reset zeroes the histogram's count, sum, and every bucket.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sumNs.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Start opens a span against the histogram; its End records the elapsed
// wall time. The span is a value — copy it freely, but End it once.
func (h *Histogram) Start() Span {
	return Span{h: h, t0: time.Now()}
}

// Span is an in-flight timed region of the pipeline (one simulate, one
// SDR acquisition, one sweep cell). Created by Histogram.Start.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the span's elapsed time into its histogram. A zero Span
// is a no-op, so conditional instrumentation can End unconditionally.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0))
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations with durations strictly below UpperNs nanoseconds (and,
// for all but the first bucket, at least UpperNs/2).
type HistogramBucket struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// ordered by ascending bound and include only non-empty entries, so the
// serialized form is compact and deterministic for equal contents.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed duration, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// Quantile returns an upper bound on the p-th quantile of the observed
// durations: the bucket boundary below which at least ceil(p·count)
// observations fall. The bound is exact to the histogram's 2x bucket
// resolution — the right precision for latency reporting, where the
// question is "which decade", not "which nanosecond". p is clamped to
// [0, 1]; a histogram with no samples reports 0.
//
// The result is a pure function of the bucket multiset, so it is
// deterministic across any merge order: merging snapshots adds bucket
// counts, and addition commutes (pinned by TestQuantileMergeOrder).
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return time.Duration(b.UpperNs)
		}
	}
	// Bucket counts summing short of Count cannot happen for snapshots
	// this package produces; answer with the largest bound regardless.
	return time.Duration(s.Buckets[len(s.Buckets)-1].UpperNs)
}

// Quantile reports the p-th quantile bound of the histogram's current
// contents; see HistogramSnapshot.Quantile for the semantics.
func (h *Histogram) Quantile(p float64) time.Duration {
	return h.snapshot().Quantile(p)
}

// Merge returns the combination of two snapshots as if every
// observation of both had been recorded into one histogram. Bucket
// counts add by boundary, so Merge is commutative and associative —
// quantiles of a multi-way merge do not depend on the merge order.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, SumNs: s.SumNs + o.SumNs}
	byUpper := make(map[int64]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byUpper[b.UpperNs] += b.Count
	}
	for _, b := range o.Buckets {
		byUpper[b.UpperNs] += b.Count
	}
	if len(byUpper) == 0 {
		return out
	}
	uppers := make([]int64, 0, len(byUpper))
	for u := range byUpper {
		uppers = append(uppers, u)
	}
	sort.Slice(uppers, func(i, j int) bool { return uppers[i] < uppers[j] })
	out.Buckets = make([]HistogramBucket, 0, len(uppers))
	for _, u := range uppers {
		out.Buckets = append(out.Buckets, HistogramBucket{UpperNs: u, Count: byUpper[u]})
	}
	return out
}

// sub returns the change from an earlier snapshot prev to s, assuming s
// extends prev (the histogram only accumulated in between). Buckets
// subtract by boundary; empty results are omitted, matching snapshot().
func (s HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count - prev.Count, SumNs: s.SumNs - prev.SumNs}
	prevByUpper := make(map[int64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByUpper[b.UpperNs] = b.Count
	}
	for _, b := range s.Buckets {
		n := b.Count - prevByUpper[b.UpperNs]
		if n == 0 {
			continue
		}
		out.Buckets = append(out.Buckets, HistogramBucket{UpperNs: b.UpperNs, Count: n})
	}
	return out
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sumNs.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(1)
		if i > 0 {
			upper = int64(1) << uint(i)
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperNs: upper, Count: n})
	}
	return s
}
