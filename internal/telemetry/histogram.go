package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets. Bucket i
// (1-based) holds durations in [2^(i-1), 2^i) nanoseconds; the last
// bucket absorbs everything above ~2^39 ns (≈9 minutes), far beyond any
// single pipeline stage.
const histBuckets = 40

// Histogram is a log-bucketed duration histogram: counts fall into
// power-of-two nanosecond buckets, so forty buckets cover nanoseconds
// to minutes with a worst-case resolution of 2x — coarse for averages
// (the exact sum is kept separately) but exactly right for "where did
// the time go" questions. All methods are safe for concurrent use; an
// Observe is three atomic adds.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets + 1]atomic.Uint64 // [0] holds d <= 0
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// bucketIndex maps a duration to its bucket: 0 for non-positive
// durations, otherwise the position of the highest set bit of the
// nanosecond count, clamped to the top bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i > histBuckets {
		i = histBuckets
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Reset zeroes the histogram's count, sum, and every bucket.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sumNs.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Start opens a span against the histogram; its End records the elapsed
// wall time. The span is a value — copy it freely, but End it once.
func (h *Histogram) Start() Span {
	return Span{h: h, t0: time.Now()}
}

// Span is an in-flight timed region of the pipeline (one simulate, one
// SDR acquisition, one sweep cell). Created by Histogram.Start.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the span's elapsed time into its histogram. A zero Span
// is a no-op, so conditional instrumentation can End unconditionally.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0))
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations with durations strictly below UpperNs nanoseconds (and,
// for all but the first bucket, at least UpperNs/2).
type HistogramBucket struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// ordered by ascending bound and include only non-empty entries, so the
// serialized form is compact and deterministic for equal contents.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed duration, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sumNs.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(1)
		if i > 0 {
			upper = int64(1) << uint(i)
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperNs: upper, Count: n})
	}
	return s
}
