package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// TestFilterPrefixEdgeCases pins the three boundary behaviours a
// renderer can hit: the empty prefix (everything passes), a prefix
// matching nothing (empty but non-nil maps, so callers can range and
// marshal without nil checks), and a prefix equal to a full series name
// (strings.HasPrefix is true for equality, so the series is included —
// the admin plane's /streams handler relies on this when a stream name
// is itself a prefix of another).
func TestFilterPrefixEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Counter("stream.daemon.a.chunks").Add(3)
	r.Counter("stream.daemon.a.chunks2").Add(9)
	r.Gauge("stream.daemon.a.queue_depth").Set(2)
	r.Histogram("stream.daemon.a.chunk").Observe(time.Millisecond)
	snap := r.Snapshot()

	all := snap.FilterPrefix("")
	if len(all.Counters) != 2 || len(all.Gauges) != 1 || len(all.Histograms) != 1 {
		t.Fatalf("empty prefix filtered something: %d counters, %d gauges, %d histograms",
			len(all.Counters), len(all.Gauges), len(all.Histograms))
	}

	none := snap.FilterPrefix("zz.nothing")
	if none.Counters == nil || none.Gauges == nil || none.Histograms == nil {
		t.Fatal("unmatched prefix returned nil maps")
	}
	if len(none.Counters)+len(none.Gauges)+len(none.Histograms) != 0 {
		t.Fatalf("unmatched prefix kept series: %v %v %v",
			none.CounterNames(), none.GaugeNames(), none.HistogramNames())
	}

	exact := snap.FilterPrefix("stream.daemon.a.chunks")
	if got := exact.CounterNames(); len(got) != 2 {
		// "...chunks" is a prefix of "...chunks2" as well as equal to
		// itself; both must survive.
		t.Fatalf("exact-name prefix kept %v, want both chunk counters", got)
	}
	if exact.Counters["stream.daemon.a.chunks"] != 3 {
		t.Fatalf("exact-name prefix lost the equal-name series: %v", exact.Counters)
	}
	if len(exact.Gauges) != 0 || len(exact.Histograms) != 0 {
		t.Fatalf("exact-name prefix kept unrelated kinds: %v %v",
			exact.GaugeNames(), exact.HistogramNames())
	}
}

// TestQuantileBasics pins the accessor's contract: empty histograms
// report 0, p is clamped, and the result is the power-of-two bucket
// bound directly above the observation.
func TestQuantileBasics(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}

	h := &Histogram{}
	h.Observe(700 * time.Nanosecond) // bucket (512, 1024]
	s := h.snapshot()
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(p); got != 1024*time.Nanosecond {
			t.Fatalf("Quantile(%v) = %v, want 1024ns", p, got)
		}
	}
	if got := h.Quantile(0.5); got != s.Quantile(0.5) {
		t.Fatalf("Histogram.Quantile = %v, snapshot Quantile = %v", got, s.Quantile(0.5))
	}

	// 90 fast observations and 10 slow ones: p50 must sit in the fast
	// bucket, p99 in the slow one.
	h2 := &Histogram{}
	for i := 0; i < 90; i++ {
		h2.Observe(3 * time.Microsecond) // bucket bound 4096 ns
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3 * time.Millisecond) // bucket bound 4194304 ns
	}
	s2 := h2.snapshot()
	if got := s2.Quantile(0.50); got != 4096*time.Nanosecond {
		t.Fatalf("p50 = %v, want 4096ns", got)
	}
	if got := s2.Quantile(0.99); got != 4194304*time.Nanosecond {
		t.Fatalf("p99 = %v, want ~4.2ms bound", got)
	}
}

// TestQuantileMergeOrder is the determinism contract for merged
// histograms: any association and permutation of Merge calls must
// report the same quantile at every probe point, and the same as one
// histogram that observed everything directly. emreport leans on this
// when it aggregates chunk-latency histograms across run artifacts
// loaded in directory order.
func TestQuantileMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	parts := make([]HistogramSnapshot, 7)
	direct := &Histogram{}
	for i := range parts {
		h := &Histogram{}
		for j := 0; j < 50+rng.Intn(200); j++ {
			d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			h.Observe(d)
			direct.Observe(d)
		}
		parts[i] = h.snapshot()
	}

	merge := func(order []int) HistogramSnapshot {
		var acc HistogramSnapshot
		for _, i := range order {
			acc = acc.Merge(parts[i])
		}
		return acc
	}
	forward := merge([]int{0, 1, 2, 3, 4, 5, 6})
	reverse := merge([]int{6, 5, 4, 3, 2, 1, 0})
	shuffled := merge([]int{3, 0, 6, 1, 5, 2, 4})
	// A tree-shaped association, the shape a parallel reducer produces.
	tree := parts[0].Merge(parts[1]).Merge(parts[2].Merge(parts[3])).
		Merge(parts[4].Merge(parts[5]).Merge(parts[6]))

	want := direct.snapshot()
	probes := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for _, p := range probes {
		ref := want.Quantile(p)
		for name, got := range map[string]HistogramSnapshot{
			"forward": forward, "reverse": reverse, "shuffled": shuffled, "tree": tree,
		} {
			if q := got.Quantile(p); q != ref {
				t.Errorf("%s merge: Quantile(%v) = %v, direct histogram = %v", name, p, q, ref)
			}
		}
	}
	if forward.Count != want.Count || forward.SumNs != want.SumNs {
		t.Errorf("merged count/sum = %d/%d, direct = %d/%d",
			forward.Count, forward.SumNs, want.Count, want.SumNs)
	}
}

// TestSnapshotDelta pins the scrape-to-scrape semantics the admin
// plane's /metrics?delta=1 endpoint serves: counters and histograms
// subtract, gauges pass through as levels, series new since the last
// scrape (or reset below it) report their full current value, and
// series that vanished are dropped.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work.items")
	g := r.Gauge("work.depth")
	h := r.Histogram("work.lat")
	c.Add(10)
	g.Set(3)
	h.Observe(time.Microsecond)
	prev := r.Snapshot()

	c.Add(7)
	g.Set(1)
	h.Observe(time.Microsecond)
	h.Observe(time.Minute)
	r.Counter("work.new").Add(4)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if d.Counters["work.items"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["work.items"])
	}
	if d.Counters["work.new"] != 4 {
		t.Errorf("new counter delta = %d, want full value 4", d.Counters["work.new"])
	}
	if d.Gauges["work.depth"] != 1 {
		t.Errorf("gauge delta = %d, want instantaneous 1", d.Gauges["work.depth"])
	}
	lat := d.Histograms["work.lat"]
	if lat.Count != 2 {
		t.Errorf("histogram delta count = %d, want 2", lat.Count)
	}
	var bucketSum uint64
	for _, b := range lat.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != lat.Count {
		t.Errorf("histogram delta buckets sum to %d, want %d", bucketSum, lat.Count)
	}
	if lat.SumNs != int64(time.Microsecond)+int64(time.Minute) {
		t.Errorf("histogram delta sum = %d", lat.SumNs)
	}

	// A reset between scrapes must not underflow: the delta is the full
	// post-reset value.
	c.Reset()
	c.Add(2)
	h.Reset()
	h.Observe(time.Millisecond)
	after := r.Snapshot().Delta(cur)
	if after.Counters["work.items"] != 2 {
		t.Errorf("post-reset counter delta = %d, want 2", after.Counters["work.items"])
	}
	if after.Histograms["work.lat"].Count != 1 {
		t.Errorf("post-reset histogram delta count = %d, want 1", after.Histograms["work.lat"].Count)
	}

	// Series present only in prev are dropped from the delta.
	if _, ok := prev.Delta(cur).Counters["work.new"]; ok {
		// prev has no work.new, so this direction must not include it...
		t.Error("delta invented a series absent from the current snapshot")
	}
}
