// Package telemetry is the pipeline's self-measurement layer: race-safe
// atomic counters, gauges, and log-bucketed duration histograms behind a
// process-wide registry whose snapshots serialize in deterministic
// (sorted) order.
//
// Two constraints shape the design, both inherited from the simulation's
// determinism contract (see the internal/sweep doc comment):
//
//   - Telemetry never writes to any stream on its own. Metrics
//     accumulate silently; a caller (cmd/paperbench's -metrics/-stats
//     flags) decides when and where a snapshot is rendered, and stdout
//     is never that place.
//
//   - Recording must be cheap enough to leave on unconditionally. A
//     counter add is one atomic RMW; a span is two time.Now calls plus
//     three atomic RMWs. Instrumentation sites sit at call granularity
//     (one Observe per STFT call, per sweep cell, per capture), never
//     per sample.
//
// Counter values split into two classes. Series derived from the
// simulation's own call sequence — trace-cache hits/misses, FFT-plan
// hits/misses, samples produced, cells executed — are identical for
// every run of the same configuration, including across -jobs settings.
// Series that observe the runtime itself — durations, sync.Pool
// recycling (the garbage collector may empty the pool at any time) —
// legitimately vary run to run. The snapshot's key set depends only on
// which code paths ran, not on scheduling.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// usable, but counters obtained via NewCounter are also registered for
// snapshotting.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter. Counters are monotonic from the
// instrumented code's point of view; Reset exists for tests and for
// cache-reset entry points (core.ResetTraceCache) that historically
// zeroed their own statistics.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous signed level (pool occupancy, active
// workers). The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// ---------------------------------------------------------------------
// Registry.

// Registry holds named metrics and produces deterministic snapshots.
// All methods are safe for concurrent use; metric lookups take a mutex,
// so callers on hot paths should hold the returned metric in a package
// variable rather than re-resolving it per event.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// std is the process-wide default registry; the package-level helpers
// operate on it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the registered counter with the given name, creating
// it on first use. Registering a name already used by another metric
// kind panics: names are the snapshot's keys and must be unambiguous.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the registered gauge with the given name, creating it
// on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the registered histogram with the given name,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	h := &Histogram{}
	r.histograms[name] = h
	return h
}

// checkFreeLocked panics when name is already taken by a different
// metric kind.
func (r *Registry) checkFreeLocked(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram, requested as %s", name, kind))
	}
}

// Reset zeroes every registered metric. Metric identities survive (held
// pointers stay valid), so instrumented packages keep working; only the
// accumulated values are dropped. Used by tests and by cache-reset
// entry points that historically zeroed their own counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// NewCounter returns the named counter from the default registry.
func NewCounter(name string) *Counter { return std.Counter(name) }

// NewGauge returns the named gauge from the default registry.
func NewGauge(name string) *Gauge { return std.Gauge(name) }

// NewHistogram returns the named histogram from the default registry.
func NewHistogram(name string) *Histogram { return std.Histogram(name) }

// Reset zeroes every metric in the default registry.
func Reset() { std.Reset() }

// ---------------------------------------------------------------------
// Snapshots.

// Snapshot is a point-in-time copy of a registry. Maps marshal with
// sorted keys under encoding/json, so two snapshots with equal values
// serialize to identical bytes regardless of registration or scheduling
// order.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Each metric is read
// atomically; the snapshot as a whole is not a consistent cut across
// metrics, which is fine for the quiescent-at-exit use it serves.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Capture returns the default registry's snapshot.
func Capture() Snapshot { return std.Snapshot() }

// WriteJSON serializes the snapshot as indented JSON. Keys appear in
// sorted order (encoding/json's map behaviour), making the output
// byte-stable for equal values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// FilterPrefix returns a snapshot containing only the series whose
// names begin with prefix — how a renderer scopes one subsystem's
// section of a dump (emscope serve prints stream.daemon.* this way).
func (s Snapshot) FilterPrefix(prefix string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if strings.HasPrefix(name, prefix) {
			out.Histograms[name] = v
		}
	}
	return out
}

// Delta returns the change from prev to s — what happened between two
// scrapes. Counters and histogram counts subtract; gauges are
// instantaneous levels, so the delta carries s's current value
// unchanged. A series absent from prev (it registered after the last
// scrape) or whose count went backwards (a Reset in between) reports
// its full current value. The key set is s's: series that existed only
// in prev are dropped, mirroring Snapshot's "key set reflects what ran"
// contract.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		if p, ok := prev.Counters[name]; ok && p <= v {
			out.Counters[name] = v - p
		} else {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if p, ok := prev.Histograms[name]; ok && p.Count <= h.Count {
			out.Histograms[name] = h.sub(p)
		} else {
			out.Histograms[name] = h
		}
	}
	return out
}

// CounterNames returns the snapshot's counter keys in sorted order —
// the iteration order every renderer should use.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the snapshot's gauge keys in sorted order.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the snapshot's histogram keys in sorted order.
func (s Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
