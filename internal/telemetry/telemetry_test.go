package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), uint64(goroutines*perG); got != want {
		t.Fatalf("concurrent counter = %d, want %d", got, want)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter(x) not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram(h) not idempotent")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("name")
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d       time.Duration
		upperNs int64
	}{
		{0, 1},                     // non-positive → the d<=0 bucket
		{-5, 1},                    //
		{1, 2},                     // [1,2)
		{2, 4},                     // [2,4)
		{3, 4},                     //
		{1023, 1024},               // [512,1024)
		{1024, 2048},               // [1024,2048)
		{1500, 2048},               //
		{time.Hour, 1 << 40},       // beyond the top bound clamps
		{100 * time.Hour, 1 << 40}, //
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		s := h.snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%v): %d non-empty buckets, want 1", tc.d, len(s.Buckets))
		}
		if s.Buckets[0].UpperNs != tc.upperNs {
			t.Errorf("Observe(%v): bucket bound %d, want %d", tc.d, s.Buckets[0].UpperNs, tc.upperNs)
		}
		if s.Buckets[0].Count != 1 {
			t.Errorf("Observe(%v): bucket count %d, want 1", tc.d, s.Buckets[0].Count)
		}
	}
}

func TestHistogramSumCountMean(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 60 {
		t.Errorf("sum = %v, want 60ns", h.Sum())
	}
	if m := h.snapshot().Mean(); m != 20 {
		t.Errorf("mean = %v, want 20ns", m)
	}
}

func TestHistogramBucketsAscendingAndComplete(t *testing.T) {
	var h Histogram
	const n = 1000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(i * 37))
	}
	s := h.snapshot()
	var total uint64
	last := int64(0)
	for _, b := range s.Buckets {
		if b.UpperNs <= last {
			t.Fatalf("bucket bounds not strictly ascending: %d after %d", b.UpperNs, last)
		}
		last = b.UpperNs
		total += b.Count
	}
	if total != n {
		t.Errorf("bucket counts sum to %d, want %d", total, n)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("concurrent histogram count = %d, want %d", got, want)
	}
}

func TestSpanRecords(t *testing.T) {
	var h Histogram
	sp := h.Start()
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span did not record: count = %d", h.Count())
	}
	// The zero span must be a no-op.
	var zero Span
	zero.End()
}

// TestSnapshotDeterministicJSON is the serialization contract: two
// registries holding the same values — populated in different orders
// from different goroutine interleavings — must serialize to identical
// bytes.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []int) []byte {
		r := NewRegistry()
		for _, i := range order {
			r.Counter(fmt.Sprintf("c.%d", i)).Add(uint64(i))
			r.Gauge(fmt.Sprintf("g.%d", i)).Set(int64(i))
			r.Histogram(fmt.Sprintf("h.%d", i)).Observe(time.Duration(i + 1))
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build([]int{1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ by registration order:\n%s\nvs\n%s", a, b)
	}
	if !json.Valid(a) {
		t.Fatal("snapshot is not valid JSON")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(42)
	r.Histogram("dur").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Counters["hits"] != 42 {
		t.Errorf("round-tripped counter = %d, want 42", back.Counters["hits"])
	}
	if back.Histograms["dur"].Count != 1 {
		t.Errorf("round-tripped histogram count = %d, want 1", back.Histograms["dur"].Count)
	}
}

func TestResetZeroesButKeepsIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(7)
	h.Observe(time.Second)
	r.Reset()
	if c.Load() != 0 {
		t.Errorf("counter survived reset: %d", c.Load())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram survived reset: count=%d sum=%v", h.Count(), h.Sum())
	}
	if r.Counter("c") != c {
		t.Error("reset changed metric identity")
	}
	c.Inc() // held pointer still live
	if r.Snapshot().Counters["c"] != 1 {
		t.Error("held pointer disconnected from registry after reset")
	}
}

func TestSortedNameAccessors(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter("c." + n)
		r.Gauge("g." + n)
		r.Histogram("h." + n)
	}
	s := r.Snapshot()
	wantC := []string{"c.a", "c.m", "c.z"}
	for i, n := range s.CounterNames() {
		if n != wantC[i] {
			t.Fatalf("CounterNames()[%d] = %q, want %q", i, n, wantC[i])
		}
	}
	if got := s.GaugeNames(); len(got) != 3 || got[0] != "g.a" {
		t.Errorf("GaugeNames() = %v", got)
	}
	if got := s.HistogramNames(); len(got) != 3 || got[2] != "h.z" {
		t.Errorf("HistogramNames() = %v", got)
	}
}

func TestSnapshotFilterPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("stream.daemon.a.chunks").Add(3)
	r.Counter("stream.daemon.b.chunks").Add(5)
	r.Counter("dsp.fft.calls").Add(7)
	r.Gauge("stream.daemon.active_streams").Set(2)
	r.Gauge("pool.captures").Set(4)
	r.Histogram("stream.daemon.lat").Observe(time.Millisecond)
	r.Histogram("stage.demod").Observe(time.Millisecond)

	f := r.Snapshot().FilterPrefix("stream.daemon.")
	if got := f.CounterNames(); len(got) != 2 || got[0] != "stream.daemon.a.chunks" || got[1] != "stream.daemon.b.chunks" {
		t.Fatalf("filtered counters = %v", got)
	}
	if f.Counters["stream.daemon.b.chunks"] != 5 {
		t.Fatalf("filtered counter value = %d, want 5", f.Counters["stream.daemon.b.chunks"])
	}
	if got := f.GaugeNames(); len(got) != 1 || got[0] != "stream.daemon.active_streams" {
		t.Fatalf("filtered gauges = %v", got)
	}
	if got := f.HistogramNames(); len(got) != 1 || got[0] != "stream.daemon.lat" {
		t.Fatalf("filtered histograms = %v", got)
	}
	if len(r.Snapshot().FilterPrefix("no.such.prefix").Counters) != 0 {
		t.Fatal("unmatched prefix returned counters")
	}
}
