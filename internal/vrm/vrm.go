// Package vrm models the buck-converter voltage regulator module that
// powers the processor, with the one behaviour that makes the paper's
// side channel exist: phase shedding. At full load the converter fires a
// large replenishment pulse every switching period; at light load it
// skips most periods and fires small pulses, so both the amplitude and
// the density of its current bursts — and therefore of its EM
// emanations — collapse.
package vrm

import (
	"fmt"

	"pmuleak/internal/power"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// Config describes one VRM instance.
type Config struct {
	// SwitchingFreqHz is the converter's nominal switching frequency
	// (1/T). Laptop VRMs sit between 250 kHz and 1 MHz.
	SwitchingFreqHz float64

	// PeriodJitterFrac is the fractional cycle-to-cycle jitter of the
	// switching clock (e.g. 0.002 for 0.2%). It broadens the spectral
	// spike slightly, as on real hardware.
	PeriodJitterFrac float64

	// InputVoltage is the DC input (battery / adapter), 10-20 V.
	InputVoltage float64

	// ShedThresholdA is the load current below which the converter
	// starts shedding (skipping) switching periods.
	ShedThresholdA float64

	// MinPulseCharge is the smallest charge packet (A·s) the converter
	// delivers; in shedding mode it waits until the load has drained
	// this much before firing.
	MinPulseCharge float64

	// AmplitudeNoiseFrac is the fractional random variation of each
	// pulse's energy (component tolerances, ripple).
	AmplitudeNoiseFrac float64

	// Phases is the number of interleaved converter phases (>= 1).
	// Multi-phase converters fire their phases T/N apart, splitting
	// the load current; at light load they shed down to one phase
	// (the multi-phase "phase shedding" of Su & Liu and Ahn et al.,
	// distinct from the pulse skipping modelled above).
	Phases int

	// PhaseImbalanceFrac is the per-phase current-share mismatch; a
	// perfectly balanced converter cancels its fundamental at the
	// output, so the imbalance is what keeps the f0 emission alive.
	PhaseImbalanceFrac float64
}

// DefaultConfig returns a 970 kHz single-phase buck typical of the
// laptops in Table I.
func DefaultConfig() Config {
	return Config{
		SwitchingFreqHz:    970e3,
		PeriodJitterFrac:   0.002,
		InputVoltage:       12,
		ShedThresholdA:     2.0,
		MinPulseCharge:     2.0 / 970e3, // one full-load-ish packet
		AmplitudeNoiseFrac: 0.05,
		Phases:             1,
		PhaseImbalanceFrac: 0.1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SwitchingFreqHz <= 0 {
		return fmt.Errorf("vrm: SwitchingFreqHz must be positive")
	}
	if c.PeriodJitterFrac < 0 || c.PeriodJitterFrac > 0.5 {
		return fmt.Errorf("vrm: PeriodJitterFrac %v out of range", c.PeriodJitterFrac)
	}
	if c.InputVoltage <= 0 {
		return fmt.Errorf("vrm: InputVoltage must be positive")
	}
	if c.ShedThresholdA < 0 {
		return fmt.Errorf("vrm: negative ShedThresholdA")
	}
	if c.MinPulseCharge <= 0 {
		return fmt.Errorf("vrm: MinPulseCharge must be positive")
	}
	if c.Phases < 0 || c.Phases > 8 {
		return fmt.Errorf("vrm: Phases %d out of range [0,8]", c.Phases)
	}
	if c.PhaseImbalanceFrac < 0 || c.PhaseImbalanceFrac > 1 {
		return fmt.Errorf("vrm: PhaseImbalanceFrac %v out of range", c.PhaseImbalanceFrac)
	}
	return nil
}

// Period returns the nominal switching period.
func (c Config) Period() sim.Time {
	return sim.FromSeconds(1 / c.SwitchingFreqHz)
}

// Pulse is one replenishment burst of the converter.
type Pulse struct {
	At sim.Time
	// Charge is the charge (A·s) transferred in the burst. EM field
	// strength scales with the burst current, i.e. with Charge for a
	// fixed burst shape.
	Charge float64
	// Phase identifies which converter phase fired (0 for single-phase
	// converters and for shed operation).
	Phase int
}

// Pulses walks the load trace and produces the converter's switching
// pulse train over [0, horizon). The load trace must be contiguous and
// sorted, as produced by power.Trace.
//
// Above the shedding threshold the converter fires every period,
// transferring the charge the load drained during that period (I·T).
// Below it, it accumulates the drain and fires only when a minimum
// packet is due, so light load produces sparse, small pulses.
func Pulses(loadTrace []power.Span, horizon sim.Time, cfg Config, rng *xrand.Source) []Pulse {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	period := cfg.Period()
	var out []Pulse
	var pending float64 // accumulated charge deficit while shedding
	spanIdx := 0
	currentAt := func(t sim.Time) float64 {
		for spanIdx < len(loadTrace) && loadTrace[spanIdx].End <= t {
			spanIdx++
		}
		if spanIdx < len(loadTrace) && t >= loadTrace[spanIdx].Start {
			return loadTrace[spanIdx].Current
		}
		return 0
	}
	for t := sim.Time(0); t < horizon; {
		i := currentAt(t)
		drained := i * period.Seconds()
		if i >= cfg.ShedThresholdA {
			// Continuous-conduction mode: pulse every period. Any
			// deficit accumulated during shedding is made up now.
			charge := drained + pending
			pending = 0
			charge *= rng.Jitter(1, cfg.AmplitudeNoiseFrac)
			if phases := cfg.Phases; phases > 1 {
				// Interleave: each phase fires T/N later with its
				// share of the charge, imbalanced by the per-phase
				// mismatch.
				sub := period / sim.Time(phases)
				for ph := 0; ph < phases; ph++ {
					share := charge / float64(phases)
					share *= 1 + cfg.PhaseImbalanceFrac*(float64(ph)/float64(phases-1)-0.5)
					out = append(out, Pulse{
						At:     t + sim.Time(ph)*sub,
						Charge: share,
						Phase:  ph,
					})
				}
			} else {
				out = append(out, Pulse{At: t, Charge: charge})
			}
		} else {
			pending += drained
			if pending >= cfg.MinPulseCharge {
				charge := pending * rng.Jitter(1, cfg.AmplitudeNoiseFrac)
				out = append(out, Pulse{At: t, Charge: charge})
				pending = 0
			}
		}
		step := period
		if cfg.PeriodJitterFrac > 0 {
			step = sim.Time(rng.Jitter(float64(period), cfg.PeriodJitterFrac))
			if step < 1 {
				step = 1
			}
		}
		t += step
	}
	return out
}

// MeanPulseRate returns the average pulse rate (Hz) of a train over the
// given horizon.
func MeanPulseRate(pulses []Pulse, horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(len(pulses)) / horizon.Seconds()
}

// TotalCharge sums the charge of all pulses.
func TotalCharge(pulses []Pulse) float64 {
	var sum float64
	for _, p := range pulses {
		sum += p.Charge
	}
	return sum
}

// EnergyRate converts a pulse train into a per-bucket charge-flow
// series: the charge delivered in each bucket of width dt, divided by
// dt. The EM synthesizer uses it as the emission envelope.
func EnergyRate(pulses []Pulse, horizon, dt sim.Time) []float64 {
	if dt <= 0 {
		panic("vrm: EnergyRate dt must be positive")
	}
	n := int((horizon + dt - 1) / dt)
	out := make([]float64, n)
	for _, p := range pulses {
		idx := int(p.At / dt)
		if idx >= 0 && idx < n {
			out[idx] += p.Charge / dt.Seconds()
		}
	}
	return out
}
