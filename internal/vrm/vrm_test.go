package vrm

import (
	"math"
	"testing"

	"pmuleak/internal/power"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

func load(current float64, start, end sim.Time) power.Span {
	return power.Span{Start: start, End: end, Current: current, Voltage: 1.2}
}

func noJitter() Config {
	cfg := DefaultConfig()
	cfg.PeriodJitterFrac = 0
	cfg.AmplitudeNoiseFrac = 0
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.SwitchingFreqHz = 0 },
		func(c *Config) { c.PeriodJitterFrac = -1 },
		func(c *Config) { c.PeriodJitterFrac = 0.9 },
		func(c *Config) { c.InputVoltage = 0 },
		func(c *Config) { c.ShedThresholdA = -1 },
		func(c *Config) { c.MinPulseCharge = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPeriod(t *testing.T) {
	cfg := DefaultConfig()
	want := sim.FromSeconds(1 / 970e3)
	if got := cfg.Period(); got != want {
		t.Fatalf("Period = %v, want %v", got, want)
	}
}

func TestFullLoadPulsesEveryPeriod(t *testing.T) {
	cfg := noJitter()
	rng := xrand.New(1)
	horizon := sim.Millisecond
	pulses := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, rng)
	wantCount := int(float64(horizon) / float64(cfg.Period()))
	if len(pulses) < wantCount-1 || len(pulses) > wantCount+1 {
		t.Fatalf("pulse count = %d, want ~%d", len(pulses), wantCount)
	}
	// Uniform spacing at the switching period.
	for i := 1; i < len(pulses); i++ {
		gap := pulses[i].At - pulses[i-1].At
		if gap != cfg.Period() {
			t.Fatalf("gap %d = %v, want %v", i, gap, cfg.Period())
		}
	}
}

func TestIdleLoadShedsPulses(t *testing.T) {
	cfg := noJitter()
	rng := xrand.New(2)
	horizon := sim.Millisecond
	// Deep-idle current: 3% of 20A = 0.6A, well under the 2A threshold.
	pulses := Pulses([]power.Span{load(0.6, 0, horizon)}, horizon, cfg, rng)
	full := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, xrand.New(2))
	if len(pulses) == 0 {
		t.Fatal("no pulses at idle; converter must still top up the capacitor")
	}
	if float64(len(pulses)) > 0.5*float64(len(full)) {
		t.Fatalf("idle pulse count %d not much less than full-load %d", len(pulses), len(full))
	}
}

func TestChargeConservationFullLoad(t *testing.T) {
	cfg := noJitter()
	rng := xrand.New(3)
	horizon := 10 * sim.Millisecond
	const current = 20.0
	pulses := Pulses([]power.Span{load(current, 0, horizon)}, horizon, cfg, rng)
	delivered := TotalCharge(pulses)
	drained := current * horizon.Seconds()
	if math.Abs(delivered-drained)/drained > 0.01 {
		t.Fatalf("delivered %v, drained %v", delivered, drained)
	}
}

func TestChargeConservationIdle(t *testing.T) {
	cfg := noJitter()
	rng := xrand.New(4)
	horizon := 50 * sim.Millisecond
	const current = 0.5
	pulses := Pulses([]power.Span{load(current, 0, horizon)}, horizon, cfg, rng)
	delivered := TotalCharge(pulses)
	drained := current * horizon.Seconds()
	// Up to one MinPulseCharge may still be pending at the horizon.
	if delivered > drained || drained-delivered > cfg.MinPulseCharge*1.01 {
		t.Fatalf("delivered %v, drained %v", delivered, drained)
	}
}

func TestAlternatingLoadModulatesPulseEnergy(t *testing.T) {
	cfg := noJitter()
	rng := xrand.New(5)
	// 100µs active / 100µs idle alternation for 10ms.
	var trace []power.Span
	for t := sim.Time(0); t < 10*sim.Millisecond; t += 200 * sim.Microsecond {
		trace = append(trace, load(20, t, t+100*sim.Microsecond))
		trace = append(trace, load(0.6, t+100*sim.Microsecond, t+200*sim.Microsecond))
	}
	horizon := 10 * sim.Millisecond
	pulses := Pulses(trace, horizon, cfg, rng)
	// Average charge-flow during active halves must far exceed idle halves.
	var activeC, idleC float64
	for _, p := range pulses {
		phase := p.At % (200 * sim.Microsecond)
		if phase < 100*sim.Microsecond {
			activeC += p.Charge
		} else {
			idleC += p.Charge
		}
	}
	if activeC < 5*idleC {
		t.Fatalf("active charge %v not dominating idle charge %v", activeC, idleC)
	}
}

func TestPeriodJitterSpreadsGaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeriodJitterFrac = 0.01
	rng := xrand.New(6)
	horizon := sim.Millisecond
	pulses := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, rng)
	distinct := map[sim.Time]bool{}
	for i := 1; i < len(pulses); i++ {
		distinct[pulses[i].At-pulses[i-1].At] = true
	}
	if len(distinct) < 2 {
		t.Fatal("jittered pulse train has constant gaps")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	horizon := sim.Millisecond
	a := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, xrand.New(9))
	b := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, xrand.New(9))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pulse %d differs", i)
		}
	}
}

func TestMeanPulseRate(t *testing.T) {
	pulses := []Pulse{{At: 0}, {At: 1}, {At: 2}}
	if r := MeanPulseRate(pulses, sim.Second); r != 3 {
		t.Fatalf("MeanPulseRate = %v", r)
	}
	if r := MeanPulseRate(pulses, 0); r != 0 {
		t.Fatalf("MeanPulseRate(horizon 0) = %v", r)
	}
}

func TestEnergyRateBinsCharge(t *testing.T) {
	pulses := []Pulse{
		{At: 0, Charge: 1},
		{At: 5 * sim.Microsecond, Charge: 2},
		{At: 15 * sim.Microsecond, Charge: 4},
	}
	rate := EnergyRate(pulses, 20*sim.Microsecond, 10*sim.Microsecond)
	if len(rate) != 2 {
		t.Fatalf("rate = %v", rate)
	}
	dt := (10 * sim.Microsecond).Seconds()
	if math.Abs(rate[0]-3/dt) > 1e-6 || math.Abs(rate[1]-4/dt) > 1e-6 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestEnergyRateBadDTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for dt=0")
		}
	}()
	EnergyRate(nil, sim.Second, 0)
}

func TestEnergyRateDropsOutOfRangePulses(t *testing.T) {
	pulses := []Pulse{{At: 100 * sim.Microsecond, Charge: 1}}
	rate := EnergyRate(pulses, 50*sim.Microsecond, 10*sim.Microsecond)
	for _, r := range rate {
		if r != 0 {
			t.Fatalf("out-of-horizon pulse leaked into rate: %v", rate)
		}
	}
}

func TestMultiPhaseInterleaving(t *testing.T) {
	cfg := noJitter()
	cfg.Phases = 4
	rng := xrand.New(20)
	horizon := 100 * sim.Microsecond
	pulses := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, rng)
	single := Pulses([]power.Span{load(20, 0, horizon)}, horizon, noJitter(), xrand.New(20))
	if len(pulses) != 4*len(single) {
		t.Fatalf("4-phase pulse count %d, single-phase %d", len(pulses), len(single))
	}
	// Phases fire T/4 apart in round-robin order (the gap wrapping to
	// the next period differs by the integer-division remainder).
	sub := cfg.Period() / 4
	for i := 1; i < 8; i++ {
		if i%4 != 0 {
			if gap := pulses[i].At - pulses[i-1].At; gap != sub {
				t.Fatalf("phase gap %d = %v, want %v", i, gap, sub)
			}
		}
		if pulses[i].Phase != i%4 {
			t.Fatalf("pulse %d phase = %d", i, pulses[i].Phase)
		}
	}
}

func TestMultiPhaseConservesCharge(t *testing.T) {
	cfg := noJitter()
	cfg.Phases = 3
	rng := xrand.New(21)
	horizon := 10 * sim.Millisecond
	const current = 20.0
	pulses := Pulses([]power.Span{load(current, 0, horizon)}, horizon, cfg, rng)
	delivered := TotalCharge(pulses)
	drained := current * horizon.Seconds()
	if math.Abs(delivered-drained)/drained > 0.02 {
		t.Fatalf("delivered %v, drained %v", delivered, drained)
	}
}

func TestMultiPhaseShedsToSinglePhase(t *testing.T) {
	cfg := noJitter()
	cfg.Phases = 4
	rng := xrand.New(22)
	horizon := 5 * sim.Millisecond
	pulses := Pulses([]power.Span{load(0.5, 0, horizon)}, horizon, cfg, rng)
	for _, p := range pulses {
		if p.Phase != 0 {
			t.Fatalf("shed pulse on phase %d, want single-phase operation", p.Phase)
		}
	}
}

func TestPhaseImbalanceSpreadsCharge(t *testing.T) {
	cfg := noJitter()
	cfg.Phases = 2
	cfg.PhaseImbalanceFrac = 0.2
	rng := xrand.New(23)
	horizon := sim.Millisecond
	pulses := Pulses([]power.Span{load(20, 0, horizon)}, horizon, cfg, rng)
	var c0, c1 float64
	for _, p := range pulses {
		if p.Phase == 0 {
			c0 += p.Charge
		} else {
			c1 += p.Charge
		}
	}
	if c0 == c1 {
		t.Fatal("imbalance had no effect")
	}
	ratio := c1 / c0
	if ratio < 1.1 || ratio > 1.4 {
		t.Fatalf("phase charge ratio = %v, want ~1.22 for 20%% imbalance", ratio)
	}
}

func TestValidatePhases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Phases = 9
	if cfg.Validate() == nil {
		t.Error("9 phases accepted")
	}
	cfg = DefaultConfig()
	cfg.PhaseImbalanceFrac = 2
	if cfg.Validate() == nil {
		t.Error("imbalance 2 accepted")
	}
}
