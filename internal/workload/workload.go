// Package workload provides canned activity generators for the
// simulated target: the micro-benchmark of Fig. 1, interactive
// applications, periodic daemons, and compute jobs. Experiments and
// examples use these to populate the victim machine with realistic
// activity beyond the attack processes themselves.
package workload

import (
	"fmt"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// Microbench spawns the paper's Fig. 1 benchmark: cycles of t1 activity
// followed by t2 idleness.
func Microbench(k *kernel.Kernel, active, idle sim.Time, cycles int) {
	if active <= 0 || idle <= 0 || cycles <= 0 {
		panic(fmt.Sprintf("workload: bad microbench parameters %v/%v x%d",
			active, idle, cycles))
	}
	k.Spawn("microbench", func(p *kernel.Proc) {
		for i := 0; i < cycles; i++ {
			p.Busy(active)
			p.Sleep(idle)
		}
	})
}

// BurstyConfig parameterizes an interactive-application workload.
type BurstyConfig struct {
	// BurstMin/BurstMax bound each activity burst.
	BurstMin, BurstMax sim.Time
	// GapMean is the mean idle time between bursts (exponential).
	GapMean sim.Time
}

// DefaultBursty models a foreground application reacting to events.
func DefaultBursty() BurstyConfig {
	return BurstyConfig{
		BurstMin: 2 * sim.Millisecond,
		BurstMax: 30 * sim.Millisecond,
		GapMean:  150 * sim.Millisecond,
	}
}

// Bursty spawns an event-driven application: exponential idle gaps
// between uniformly sized activity bursts.
func Bursty(k *kernel.Kernel, cfg BurstyConfig, seed int64) {
	if cfg.BurstMin <= 0 || cfg.BurstMax < cfg.BurstMin || cfg.GapMean <= 0 {
		panic("workload: bad bursty parameters")
	}
	rng := xrand.New(seed)
	k.Spawn("bursty-app", func(p *kernel.Proc) {
		for {
			p.Sleep(sim.Time(rng.Exp(float64(cfg.GapMean))))
			p.Busy(sim.Time(rng.Uniform(float64(cfg.BurstMin), float64(cfg.BurstMax))))
		}
	})
}

// Periodic spawns a daemon that wakes every interval and works for the
// given duration — the classic heartbeat/telemetry pattern.
func Periodic(k *kernel.Kernel, interval, work sim.Time) {
	if interval <= 0 || work < 0 {
		panic("workload: bad periodic parameters")
	}
	k.Spawn("periodic-daemon", func(p *kernel.Proc) {
		for {
			p.Sleep(interval)
			if work > 0 {
				p.Busy(work)
			}
		}
	})
}

// Compute spawns a batch job that runs flat out for the given duration
// and exits — the "long period of intense activity" the paper notes can
// pause a covert transmission.
func Compute(k *kernel.Kernel, duration sim.Time) {
	if duration <= 0 {
		panic("workload: bad compute duration")
	}
	k.Spawn("compute-job", func(p *kernel.Proc) {
		p.Busy(duration)
	})
}

// PageLoad injects the activity signature of rendering a page: a main
// burst plus a few follow-up bursts (subresource handling, layout).
func PageLoad(k *kernel.Kernel, at sim.Time, mainWork sim.Time, seed int64) {
	if mainWork <= 0 {
		panic("workload: bad page-load work")
	}
	rng := xrand.New(seed)
	k.InjectBurst(at, mainWork)
	cursor := at + mainWork
	for i := 0; i < 3; i++ {
		gap := sim.Time(rng.Uniform(float64(5*sim.Millisecond), float64(20*sim.Millisecond)))
		work := sim.Time(rng.Uniform(float64(mainWork/20), float64(mainWork/8)))
		cursor += gap
		k.InjectBurst(cursor, work)
		cursor += work
	}
}
