package workload

import (
	"testing"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

func quietKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{OS: kernel.Linux, TimerGranularity: sim.Microsecond}, 1)
}

func TestMicrobenchAlternates(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	Microbench(k, 2*sim.Millisecond, 2*sim.Millisecond, 5)
	k.Run(30 * sim.Millisecond)
	spans := k.Activity(20 * sim.Millisecond)
	if len(spans) != 5 {
		t.Fatalf("got %d active spans, want 5", len(spans))
	}
	f := k.BusyFraction(20 * sim.Millisecond)
	if f < 0.4 || f > 0.6 {
		t.Fatalf("busy fraction = %v, want ~0.5", f)
	}
}

func TestMicrobenchBadParamsPanic(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Microbench(k, 0, sim.Millisecond, 1)
}

func TestBurstyProducesBursts(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	Bursty(k, DefaultBursty(), 7)
	k.Run(5 * sim.Second)
	spans := k.Activity(5 * sim.Second)
	if len(spans) < 15 {
		t.Fatalf("only %d bursts in 5s", len(spans))
	}
	cfg := DefaultBursty()
	for _, s := range spans {
		if s.Duration() > cfg.BurstMax+sim.Millisecond {
			t.Fatalf("burst of %v exceeds max %v", s.Duration(), cfg.BurstMax)
		}
	}
	// Mostly idle overall.
	if f := k.BusyFraction(5 * sim.Second); f > 0.4 {
		t.Fatalf("bursty workload too heavy: %v", f)
	}
}

func TestBurstyBadParamsPanic(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Bursty(k, BurstyConfig{BurstMin: 2, BurstMax: 1, GapMean: 1}, 1)
}

func TestPeriodicTicksRegularly(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	Periodic(k, 10*sim.Millisecond, sim.Millisecond)
	k.Run(105 * sim.Millisecond)
	spans := k.Activity(105 * sim.Millisecond)
	if len(spans) < 9 || len(spans) > 11 {
		t.Fatalf("got %d periodic spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		gap := spans[i].Start - spans[i-1].Start
		if gap < 10*sim.Millisecond || gap > 13*sim.Millisecond {
			t.Fatalf("period %d = %v", i, gap)
		}
	}
}

func TestComputeRunsOnce(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	Compute(k, 50*sim.Millisecond)
	k.Run(sim.Second)
	spans := k.Activity(sim.Second)
	if len(spans) != 1 || spans[0].Duration() != 50*sim.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
}

func TestPageLoadSignature(t *testing.T) {
	k := quietKernel()
	defer k.Close()
	PageLoad(k, 10*sim.Millisecond, 100*sim.Millisecond, 3)
	k.Run(sim.Second)
	spans := k.Activity(sim.Second)
	if len(spans) < 2 || len(spans) > 4 {
		t.Fatalf("got %d spans, want main burst + follow-ups", len(spans))
	}
	if spans[0].Start != 10*sim.Millisecond || spans[0].Duration() != 100*sim.Millisecond {
		t.Fatalf("main burst = %v", spans[0])
	}
	// Follow-ups are much smaller than the main burst.
	for _, s := range spans[1:] {
		if s.Duration() > 20*sim.Millisecond {
			t.Fatalf("follow-up too large: %v", s.Duration())
		}
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	cases := []func(k *kernel.Kernel){
		func(k *kernel.Kernel) { Periodic(k, 0, 1) },
		func(k *kernel.Kernel) { Compute(k, 0) },
		func(k *kernel.Kernel) { PageLoad(k, 0, 0, 1) },
	}
	for i, fn := range cases {
		k := quietKernel()
		func() {
			defer k.Close()
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn(k)
		}()
	}
}
