package xrand

import (
	"math"
	"math/bits"
)

// This file is the population-scale side of the package: substream
// derivation and a lightweight generator for campaigns that create one
// stream per simulated cell. A campaign over a million cells cannot
// afford math/rand's ~5 KB, 607-word lagged-Fibonacci state per cell —
// seeding alone would dominate the run — so cells use Lite, an 8-byte
// SplitMix64 stream whose construction is four integer operations.
//
// The derivation contract: Sub(seed, key) depends only on (seed, key),
// never on how many other substreams exist or in which order they are
// created. That is what makes a sharded campaign's report independent
// of the shard and worker count — cell i's stream is a pure function of
// the campaign seed and i's stable identity.

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014;
// the same mixer java.util.SplittableRandom and xoshiro seeding use).
// It is a bijection on uint64 with full avalanche: flipping any input
// bit flips each output bit with probability ~1/2, which is why
// adjacent keys yield statistically unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Lite is a small deterministic random stream: SplitMix64 over an
// 8-byte counter state. Construction is four integer ops and zero
// allocations, so creating one per campaign cell is essentially free.
// The value is self-contained — copy it to fork the stream position —
// and, like Source, a single Lite is not safe for concurrent use.
//
// Quality: SplitMix64 passes BigCrush as a 64-bit generator; its
// equidistribution is weaker than math/rand's source, which is fine for
// the Monte-Carlo population draws campaigns make (a handful of
// uniforms per cell) and not fine for cryptography, which nothing in
// this repository needs.
type Lite struct {
	state uint64
}

// Sub derives the substream for (seed, key): a Lite positioned at the
// start of a stream that is a pure function of the two inputs. Distinct
// keys give streams whose start states are splitmix64-mixed, so
// key k and key k+1 land at unrelated positions of the underlying
// sequence (the substream independence test quantifies this).
func Sub(seed int64, key uint64) Lite {
	// Two mixing rounds: one to spread the seed, one to fold the key in.
	// A single xor of raw seed and key would make (seed=1,key=2) and
	// (seed=2,key=1) collide; the round between them breaks that.
	return Lite{state: splitmix64(splitmix64(uint64(seed)) ^ key)}
}

// SubSource derives an independent full-state Source for (seed, key).
// It is the heavyweight sibling of Sub for consumers that want
// math/rand's generator quality (per-shard model state, not per-cell
// draws); construction costs a math/rand seeding pass.
func SubSource(seed int64, key uint64) *Source {
	return New(int64(splitmix64(splitmix64(uint64(seed))^key) >> 1))
}

// Uint64 returns the next 64 uniform bits.
func (l *Lite) Uint64() uint64 {
	l.state += 0x9e3779b97f4a7c15
	x := l.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (l *Lite) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard double-precision ladder.
	return float64(l.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform value in [lo, hi).
func (l *Lite) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*l.Float64()
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (l *Lite) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Lite.Intn with non-positive n")
	}
	// The multiply-shift reduction has modulo bias below one part in
	// 2^32 for the n this repo uses (population class counts); campaigns
	// prefer the two fewer ops over a rejection loop.
	hi, _ := bits.Mul64(l.Uint64(), uint64(n))
	return int(hi)
}

// Bool returns true with probability p.
func (l *Lite) Bool(p float64) bool { return l.Float64() < p }

// Normal returns a Gaussian value with the given mean and standard
// deviation, via Box-Muller on two uniforms. No spare is cached — the
// state stays 8 bytes and the draw count per call stays fixed, which
// keeps substream consumption predictable.
func (l *Lite) Normal(mean, stddev float64) float64 {
	u := l.Float64()
	for u == 0 {
		u = l.Float64()
	}
	v := l.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u))*math.Cos(2*math.Pi*v)
}

// Exp returns an exponentially distributed value with the given mean.
func (l *Lite) Exp(mean float64) float64 {
	u := l.Float64()
	for u == 0 {
		u = l.Float64()
	}
	return -mean * math.Log(u)
}

// ---------------------------------------------------------------------
// Zipf.

// Zipf samples a Zipf(s) distribution over ranks 0..n-1:
// P(k) ∝ 1/(k+1)^s. The sampler is a precomputed CDF plus one binary
// search per draw, so a single Zipf value can be shared read-only by
// every worker of a campaign — construction is the only mutation.
type Zipf struct {
	cdf []float64 // cdf[k] = P(rank <= k), cdf[n-1] == 1
}

// NewZipf builds the sampler for n ranks with exponent s. s == 0 is the
// uniform distribution; larger s concentrates mass on low ranks (s in
// [0.8, 1.2] matches the workload/popularity skews measured for real
// fleets). n must be positive.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // exact, regardless of rounding in the division
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Pick maps a uniform u in [0, 1) to a rank via inverse CDF. Callers
// pass the uniform explicitly (z.Pick(rng.Float64())) so the sampler
// itself stays stateless and safe for concurrent use.
func (z *Zipf) Pick(u float64) int {
	// Binary search for the first cdf[k] > u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
