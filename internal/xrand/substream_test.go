package xrand

import (
	"math"
	"testing"
)

// TestSubDeterministic: a substream is a pure function of (seed, key) —
// the property the campaign determinism contract rests on.
func TestSubDeterministic(t *testing.T) {
	a := Sub(2020, 17)
	b := Sub(2020, 17)
	for i := 0; i < 64; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %x != %x", i, av, bv)
		}
	}
	c := Sub(2020, 18)
	d := Sub(2021, 17)
	e := Sub(2020, 17)
	if c.Uint64() == e.Uint64() {
		t.Fatal("adjacent keys produced identical first draws")
	}
	e = Sub(2020, 17)
	if d.Uint64() == e.Uint64() {
		t.Fatal("adjacent seeds produced identical first draws")
	}
}

// TestSubSeedKeyAsymmetry: (seed=a, key=b) and (seed=b, key=a) must be
// distinct streams — the reason Sub mixes the seed before folding the
// key in.
func TestSubSeedKeyAsymmetry(t *testing.T) {
	a := Sub(1, 2)
	b := Sub(2, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("Sub(1,2) and Sub(2,1) collide")
	}
}

// TestSubKeyCollisions: across 4096 shard keys (4x the satellite's
// >=1k floor) and several campaign seeds, no two substreams share a
// start state, and no two first outputs collide.
func TestSubKeyCollisions(t *testing.T) {
	const keys = 4096
	for _, seed := range []int64{0, 1, 2020, -7, 1 << 40} {
		states := make(map[uint64]uint64, keys)
		firsts := make(map[uint64]uint64, keys)
		for k := uint64(0); k < keys; k++ {
			l := Sub(seed, k)
			if prev, dup := states[l.state]; dup {
				t.Fatalf("seed %d: keys %d and %d share a start state", seed, prev, k)
			}
			states[l.state] = k
			f := l.Uint64()
			if prev, dup := firsts[f]; dup {
				t.Fatalf("seed %d: keys %d and %d share a first draw", seed, prev, k)
			}
			firsts[f] = k
		}
	}
}

// TestSubCrossCorrelation: streams from adjacent shard keys must be
// statistically independent. For 1024 key pairs, the Pearson
// correlation between the two streams' uniforms (256 draws each) must
// stay inside the +-4/sqrt(n) band expected of independent sequences,
// and the worst pair must not be wildly outside it.
func TestSubCrossCorrelation(t *testing.T) {
	const (
		pairs = 1024
		draws = 256
	)
	// 4/sqrt(draws) = 0.25: a generous per-pair bound (~4 sigma), with
	// the mean |r| over all pairs additionally bounded near its
	// independent-sequence expectation E|r| ~ sqrt(2/(pi*draws)) ~ 0.05.
	const perPairBound = 0.25
	var sumAbs float64
	for k := uint64(0); k < pairs; k++ {
		a := Sub(2020, k)
		b := Sub(2020, k+1)
		var sa, sb, saa, sbb, sab float64
		for i := 0; i < draws; i++ {
			x, y := a.Float64(), b.Float64()
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		n := float64(draws)
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		r := cov / math.Sqrt(va*vb)
		if math.Abs(r) > perPairBound {
			t.Fatalf("keys %d/%d: cross-correlation %.3f exceeds %.2f", k, k+1, r, perPairBound)
		}
		sumAbs += math.Abs(r)
	}
	if mean := sumAbs / pairs; mean > 0.08 {
		t.Fatalf("mean |r| over %d adjacent-key pairs = %.3f, want < 0.08 (independent streams ~0.05)", pairs, mean)
	}
}

// TestLiteUniformMoments: the Float64 stream has the right first two
// moments (mean 1/2, variance 1/12) to Monte-Carlo tolerance.
func TestLiteUniformMoments(t *testing.T) {
	l := Sub(7, 0)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := l.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

// TestLiteIntnRange: Intn stays in range and covers every residue for
// small n; non-positive n panics like math/rand.
func TestLiteIntnRange(t *testing.T) {
	l := Sub(3, 9)
	seen := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := l.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Fatalf("Intn(7) never produced %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	l.Intn(0)
}

// TestLiteNormal: Box-Muller moments at Monte-Carlo tolerance.
func TestLiteNormal(t *testing.T) {
	l := Sub(11, 4)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := l.Normal(2, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("variance = %v, want ~9", variance)
	}
}

// TestSubSource: the heavyweight sibling is deterministic and
// key-sensitive too.
func TestSubSource(t *testing.T) {
	if SubSource(5, 1).Int63() != SubSource(5, 1).Int63() {
		t.Fatal("SubSource is not deterministic")
	}
	if SubSource(5, 1).Int63() == SubSource(5, 2).Int63() {
		t.Fatal("SubSource keys 1 and 2 collide")
	}
}

// TestZipf: CDF sanity — skew toward low ranks for s>0, uniformity for
// s==0, exact coverage of [0,1) including the u->1 edge.
func TestZipf(t *testing.T) {
	z := NewZipf(8, 1.1)
	if z.N() != 8 {
		t.Fatalf("N = %d", z.N())
	}
	if z.Pick(0) != 0 {
		t.Fatalf("Pick(0) = %d, want rank 0", z.Pick(0))
	}
	if got := z.Pick(math.Nextafter(1, 0)); got != 7 {
		t.Fatalf("Pick(1-eps) = %d, want last rank", got)
	}
	// Empirical skew: rank 0 must dominate rank 7 by roughly 8^1.1.
	l := Sub(13, 0)
	counts := make([]int, 8)
	for i := 0; i < 100000; i++ {
		counts[z.Pick(l.Float64())]++
	}
	if counts[0] < 5*counts[7] {
		t.Fatalf("insufficient skew: counts %v", counts)
	}
	// s == 0 is uniform: every rank within 20%% of the mean.
	u := NewZipf(4, 0)
	counts = make([]int, 4)
	for i := 0; i < 100000; i++ {
		counts[u.Pick(l.Float64())]++
	}
	for r, c := range counts {
		if c < 20000 || c > 30000 {
			t.Fatalf("s=0 rank %d count %d, want ~25000", r, c)
		}
	}
}

func BenchmarkSubPerCell(b *testing.B) {
	// The campaign inner loop: derive a cell substream and make a
	// handful of draws. Compare with BenchmarkSourcePerCell.
	var sink float64
	for i := 0; i < b.N; i++ {
		l := Sub(2020, uint64(i))
		sink += l.Float64() + l.Float64() + l.Float64() + l.Float64()
	}
	_ = sink
}

func BenchmarkSourcePerCell(b *testing.B) {
	// What the same loop costs with a full math/rand source per cell:
	// the ~5 KB lagged-Fibonacci seeding campaigns cannot afford.
	var sink float64
	for i := 0; i < b.N; i++ {
		s := New(2020 + int64(i))
		sink += s.Float64() + s.Float64() + s.Float64() + s.Float64()
	}
	_ = sink
}
