// Package xrand provides the deterministic random sources used throughout
// the simulation. Every stochastic model effect — sleep-timer overshoot,
// interrupt arrival, VRM clock jitter, receiver noise — draws from a
// Source seeded by the experiment, so a run is reproducible bit for bit.
//
// The distributions here are the ones the paper's phenomena call for:
// Gaussian receiver noise, exponential interrupt inter-arrival times, and
// the positively skewed (Rayleigh-tailed) sleep overshoot that produces
// the pulse-width distribution of Fig. 6.
package xrand

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It is not safe for concurrent
// use; the simulation is single-threaded by construction.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source. Models use Fork so that
// adding draws to one subsystem does not perturb the streams of others.
func (s *Source) Fork() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Normal returns a Gaussian value with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Exp returns an exponentially distributed value with the given mean.
// The exponential is the natural model for interrupt inter-arrival times.
func (s *Source) Exp(mean float64) float64 {
	return mean * s.rng.ExpFloat64()
}

// Rayleigh returns a Rayleigh-distributed value with scale sigma.
// Mean = sigma*sqrt(pi/2); mode = sigma.
func (s *Source) Rayleigh(sigma float64) float64 {
	// Inverse-CDF sampling: X = sigma * sqrt(-2 ln U).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// PositiveSkew returns min plus a Rayleigh tail with scale sigma. This is
// the sleep-overshoot model: usleep(d) never returns early, usually
// returns a little late, and occasionally returns much later, exactly the
// positively skewed shape the paper measures for signaling periods.
func (s *Source) PositiveSkew(min, sigma float64) float64 {
	return min + s.Rayleigh(sigma)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Bytes fills p with random bytes.
func (s *Source) Bytes(p []byte) {
	// rand.Rand.Read never returns an error.
	s.rng.Read(p)
}

// Bits returns n random bits as a byte slice of 0/1 values. It is the
// standard way experiments generate the random payloads the paper uses
// for BER measurement.
func (s *Source) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if s.rng.Int63()&1 == 1 {
			out[i] = 1
		}
	}
	return out
}

// Jitter returns v scaled by a uniform factor in [1-frac, 1+frac]. It is
// used for small multiplicative spreads such as VRM switching-period
// tolerance.
func (s *Source) Jitter(v, frac float64) float64 {
	return v * s.Uniform(1-frac, 1+frac)
}
