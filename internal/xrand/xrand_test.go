package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("sources with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	// A fork's stream must not change if the parent is used afterwards.
	p1 := New(7)
	c1 := p1.Fork()
	firstDraws := make([]float64, 10)
	for i := range firstDraws {
		firstDraws[i] = c1.Float64()
	}

	p2 := New(7)
	c2 := p2.Fork()
	for i := 0; i < 50; i++ {
		p2.Float64() // extra parent draws after the fork
	}
	for i := range firstDraws {
		if got := c2.Float64(); got != firstDraws[i] {
			t.Fatalf("fork stream perturbed by parent usage at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(7)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-7) > 0.1 {
		t.Errorf("Exp mean = %v, want ~7", mean)
	}
}

func TestRayleighMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	const sigma = 2.5
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Rayleigh(sigma)
		if v < 0 {
			t.Fatalf("Rayleigh returned negative %v", v)
		}
		sum += v
	}
	wantMean := sigma * math.Sqrt(math.Pi/2)
	if mean := sum / n; math.Abs(mean-wantMean) > 0.02*wantMean {
		t.Errorf("Rayleigh mean = %v, want ~%v", mean, wantMean)
	}
}

func TestPositiveSkewNeverBelowMin(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.PositiveSkew(10, 3); v < 10 {
			t.Fatalf("PositiveSkew below min: %v", v)
		}
	}
}

func TestPositiveSkewIsSkewed(t *testing.T) {
	// Skewness of the Rayleigh tail is positive (~0.63); verify the
	// sample skewness is clearly positive.
	s := New(9)
	const n = 100000
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = s.PositiveSkew(0, 1)
		sum += vals[i]
	}
	mean := sum / n
	var m2, m3 float64
	for _, v := range vals {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	skew := m3 / math.Pow(m2, 1.5)
	if skew < 0.4 {
		t.Errorf("sample skewness = %v, want clearly positive (~0.63)", skew)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(10)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			trues++
		}
	}
	p := float64(trues) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
	if s.Bool(0) {
		// Bool(0) should essentially never be true; a single draw check
		// is probabilistic but with p=0 exact.
		t.Error("Bool(0) returned true")
	}
}

func TestBits(t *testing.T) {
	s := New(11)
	bits := s.Bits(10000)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("Bits produced non-bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("ones = %d / 10000, want near balanced", ones)
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(12)
	for i := 0; i < 10000; i++ {
		v := s.Jitter(100, 0.05)
		if v < 95 || v > 105 {
			t.Fatalf("Jitter(100, 0.05) = %v out of bounds", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBytesFills(t *testing.T) {
	s := New(14)
	p := make([]byte, 64)
	s.Bytes(p)
	allZero := true
	for _, b := range p {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("Bytes left buffer all zero")
	}
}
